package fleetsim_test

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment end to end
// and reports the paper's headline quantities as custom benchmark metrics
// (so `go test -bench=.` regenerates the evaluation). ns/op is the wall
// time of one full experiment; the interesting outputs are the custom
// metrics, e.g. fleet-vs-android median speedup for Fig. 13.
//
// The shapes to compare against the paper are recorded in EXPERIMENTS.md.

import (
	"testing"

	"fleetsim/fleet"
)

// benchParams are reduced-round parameters so the full harness finishes in
// minutes; run cmd/fleetsim for the full versions.
func benchParams() fleet.Params {
	p := fleet.DefaultParams()
	p.Rounds = 4
	return p
}

func BenchmarkFig02HotVsCold(b *testing.B) {
	p := benchParams()
	p.Rounds = 3
	for i := 0; i < b.N; i++ {
		rows := fleet.Fig2(p)
		var hot, cold float64
		for _, r := range rows {
			hot += r.HotMs
			cold += r.ColdMs
		}
		n := float64(len(rows))
		b.ReportMetric(hot/n, "hot-ms")
		b.ReportMetric(cold/n, "cold-ms")
		b.ReportMetric(cold/hot, "cold/hot-x")
	}
}

func BenchmarkFig03TailBaselines(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows := fleet.Fig3(p)
		var noswap, swap, marvin float64
		for _, r := range rows {
			noswap += r.NoSwapMs
			swap += r.SwapMs
			marvin += r.MarvinMs
		}
		n := float64(len(rows))
		b.ReportMetric(noswap/n, "noswap-p90-ms")
		b.ReportMetric(swap/n, "swap-p90-ms")
		b.ReportMetric(marvin/n, "marvin-p90-ms")
	}
}

func BenchmarkFig04AccessTimeline(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res := fleet.Fig4(p)
		gcPts := 0
		for _, pt := range res.Points {
			if pt.GC {
				gcPts++
			}
		}
		b.ReportMetric(float64(len(res.Points)), "samples")
		b.ReportMetric(float64(gcPts), "gc-spike-samples")
	}
}

func BenchmarkFig05Lifetime(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res := fleet.Fig5(p)
		b.ReportMetric(100*res.AliveFGO, "fgo-alive-%")
		b.ReportMetric(100*res.AliveBGO, "bgo-alive-%")
	}
}

func BenchmarkFig06ReAccess(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows := fleet.Fig6a(p)
		var nro, union float64
		for _, r := range rows {
			nro += r.NROFrac
			union += r.BothFrac
		}
		n := float64(len(rows))
		b.ReportMetric(100*nro/n, "nro-coverage-%")
		b.ReportMetric(100*union/n, "union-coverage-%")
	}
}

func BenchmarkFig07SizeCDF(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows := fleet.Fig7(p)
		var subPage float64
		for _, r := range rows {
			subPage += r.CDF[8] // ≤ 4096 B
		}
		b.ReportMetric(100*subPage/float64(len(rows)), "below-page-%")
	}
}

func BenchmarkFig11aCachingLarge(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		s := fleet.Fig11a(p)
		b.ReportMetric(float64(s[0].Max), "android-max-apps")
		b.ReportMetric(float64(s[1].Max), "marvin-max-apps")
		b.ReportMetric(float64(s[2].Max), "fleet-max-apps")
	}
}

func BenchmarkFig11bCachingSmall(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		s := fleet.Fig11b(p)
		b.ReportMetric(float64(s[1].Max), "marvin-max-apps")
		b.ReportMetric(float64(s[2].Max), "fleet-max-apps")
		b.ReportMetric(float64(s[2].Max)/float64(s[1].Max), "fleet/marvin-x")
	}
}

func BenchmarkFig11cCachingCommercial(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		s := fleet.Fig11c(p)
		b.ReportMetric(float64(s[0].Max), "noswap-max-apps")
		b.ReportMetric(float64(s[1].Max), "swap-max-apps")
		b.ReportMetric(float64(s[2].Max), "fleet-max-apps")
	}
}

func BenchmarkFig12aGCWorkingSet(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows := fleet.Fig12a(p)
		b.ReportMetric(rows[0].MeanObjects, "android-objs")
		b.ReportMetric(rows[2].MeanObjects, "fleet-bgc-objs")
		if rows[2].MeanObjects > 0 {
			b.ReportMetric(rows[0].MeanObjects/rows[2].MeanObjects, "reduction-x")
		}
	}
}

func BenchmarkFig12bTwitchTimeline(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res := fleet.Fig12b(p)
		var androidBg, fleetBg int64
		for _, pt := range res.Android {
			if pt.TimeSec >= res.BackSec && pt.TimeSec < res.FrontSec {
				androidBg += pt.GC
			}
		}
		for _, pt := range res.Fleet {
			if pt.TimeSec >= res.BackSec && pt.TimeSec < res.FrontSec {
				fleetBg += pt.GC
			}
		}
		b.ReportMetric(float64(androidBg), "android-bg-gc-objs")
		b.ReportMetric(float64(fleetBg), "fleet-bg-gc-objs")
	}
}

func BenchmarkFig13HotLaunch(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res := fleet.Fig13(p)
		sa, sm := res.MedianSpeedups()
		ta, tm := res.PercentileSpeedups(90)
		b.ReportMetric(sa, "med-vs-android-x")
		b.ReportMetric(sm, "med-vs-marvin-x")
		b.ReportMetric(ta, "p90-vs-android-x")
		b.ReportMetric(tm, "p90-vs-marvin-x")
	}
}

func BenchmarkFig14Frames(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows := fleet.Fig14(p)
		var aj, fj, mj float64
		for _, r := range rows {
			aj += r.AndroidJank
			mj += r.MarvinJank
			fj += r.FleetJank
		}
		n := float64(len(rows))
		b.ReportMetric(100*aj/n, "android-jank-%")
		b.ReportMetric(100*mj/n, "marvin-jank-%")
		b.ReportMetric(100*fj/n, "fleet-jank-%")
	}
}

func BenchmarkFig15Speedups(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows := fleet.Fig15(fleet.Fig13(p))
		for _, r := range rows {
			if r.Statistic == "90th percentile" {
				b.ReportMetric(r.VsAndroid, "p90-vs-android-x")
				b.ReportMetric(r.VsMarvin, "p90-vs-marvin-x")
			}
		}
	}
}

func BenchmarkFig16MoreCDFs(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res := fleet.Fig16(p)
		sa, _ := res.MedianSpeedups()
		b.ReportMetric(sa, "med-vs-android-x")
	}
}

func BenchmarkSec73CPU(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		r := fleet.Sec73(p)
		b.ReportMetric(100*(r.FleetGCShare-r.AndroidGCShare), "gc-cpu-delta-pp")
		b.ReportMetric(r.FleetPower, "fleet-mw")
		b.ReportMetric(r.AndroidPower, "android-mw")
	}
}

func BenchmarkSec74HeapSensitivity(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows := fleet.Sec74(p)
		for _, r := range rows {
			if r.Policy == "Fleet" && r.Growth == 1.1 {
				b.ReportMetric(float64(r.MaxCached), "fleet-1.1x-max-apps")
			}
			if r.Policy == "Android" && r.Growth == 1.1 {
				b.ReportMetric(float64(r.MaxCached), "android-1.1x-max-apps")
			}
		}
	}
}
