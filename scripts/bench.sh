#!/bin/sh
# Runs the hot-path micro-benchmarks (GC trace, page-table lookup, fleetd
# per-job service overhead, the zram store/load round trip) plus the
# end-to-end per-policy device-tick bench and the population campaign's
# per-device cost, and writes the raw `go test -json` stream to $BENCH_OUT
# (default BENCH_5.json) at the repo root.
#
# Usage: [BENCH_OUT=out.json] [BENCH_COUNT=N] scripts/bench.sh [extra go-test args]
#
# BENCH_COUNT repeats every benchmark N times (go test -count); diffing
# tools average the repetitions, so N>1 smooths scheduler noise.
# Compare two streams with: go run ./scripts old.json new.json
set -eu

cd "$(dirname "$0")/.."

out=${BENCH_OUT:-BENCH_5.json}
count=${BENCH_COUNT:-1}
go test -run '^$' -bench 'TraceHotPath|PageLookup|PageRangeWalk|ServiceJob|DeviceTick|ZramSwapOut' \
	-benchmem -count "$count" -json \
	"$@" ./internal/gc ./internal/mem ./internal/vmem ./internal/service ./internal/core ./internal/population | tee "$out" | \
	grep -o '"Output":"Benchmark[^"]*' | sed 's/"Output":"//; s/\\t/\t/g; s/\\n//' || true

echo "wrote $out"
