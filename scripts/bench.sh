#!/bin/sh
# Runs the hot-path micro-benchmarks (GC trace, page-table lookup and the
# fleetd per-job service overhead) and writes the raw `go test -json`
# stream to $BENCH_OUT (default BENCH_1.json) at the repo root.
# Usage: [BENCH_OUT=BENCH_2.json] scripts/bench.sh [extra go-test args]
set -eu

cd "$(dirname "$0")/.."

out=${BENCH_OUT:-BENCH_1.json}
go test -run '^$' -bench 'TraceHotPath|PageLookup|PageRangeWalk|ServiceJob' -benchmem -json \
	"$@" ./internal/gc ./internal/mem ./internal/service | tee "$out" | \
	grep -o '"Output":"Benchmark[^"]*' | sed 's/"Output":"//; s/\\t/\t/g; s/\\n//' || true

echo "wrote $out"
