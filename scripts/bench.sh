#!/bin/sh
# Runs the hot-path micro-benchmarks (GC trace and page-table lookup) and
# writes the raw `go test -json` stream to BENCH_1.json at the repo root.
# Usage: scripts/bench.sh [extra go-test args]
set -eu

cd "$(dirname "$0")/.."

out=BENCH_1.json
go test -run '^$' -bench 'TraceHotPath|PageLookup|PageRangeWalk' -benchmem -json \
	"$@" ./internal/gc ./internal/mem | tee "$out" | \
	grep -o '"Output":"Benchmark[^"]*' | sed 's/"Output":"//; s/\\t/\t/g; s/\\n//' || true

echo "wrote $out"
