// Command benchdiff compares two benchmark streams produced by
// scripts/bench.sh (raw `go test -json` output) and prints a per-benchmark
// delta table: ns/op, B/op and allocs/op, averaged over repetitions when
// the stream was recorded with BENCH_COUNT > 1.
//
// Usage:
//
//	go run ./scripts [flags] OLD.json NEW.json
//
//	-gate regex        also gate: exit 1 if any benchmark matching regex
//	                   regressed in ns/op by more than -max-regress
//	-max-regress pct   regression threshold in percent (default 25)
//
// The gate is how CI enforces the trace hot path's budget: the checked-in
// BENCH_3.json is the baseline, the freshly measured stream is the
// candidate, and a >threshold ns/op regression on the gated benchmarks
// fails the build. Absolute times differ across machines, so the threshold
// is deliberately loose — it catches algorithmic regressions, not noise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metrics is one benchmark's averaged results.
type metrics struct {
	nsOp     float64
	bOp      float64
	allocsOp float64
	hasMem   bool
	runs     int
}

// testEvent is the subset of the `go test -json` event we need.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// benchLine matches a go-test benchmark result line, e.g.
// "BenchmarkTraceHotPath-4   2000   447484 ns/op   256 B/op   1 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseStream reads a `go test -json` stream and accumulates benchmark
// results by name (GOMAXPROCS suffix stripped, repetitions averaged).
// Output events are write chunks, not lines — a benchmark's name and its
// numbers usually arrive in separate events — so the stream's output is
// reassembled first and split on real newlines.
func parseStream(path string) (map[string]*metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev testEvent
		if json.Unmarshal(sc.Bytes(), &ev) != nil || ev.Action != "output" {
			continue
		}
		text.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := map[string]*metrics{}
	for _, line := range strings.Split(text.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name, rest := m[1], m[2]
		e := out[name]
		if e == nil {
			e = &metrics{}
			out[name] = e
		}
		// rest is "<value> <unit>" pairs separated by whitespace.
		fields := strings.Fields(rest)
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.nsOp += v
			case "B/op":
				e.bOp += v
				e.hasMem = true
			case "allocs/op":
				e.allocsOp += v
			}
		}
		e.runs++
	}
	for _, e := range out {
		if e.runs > 0 {
			e.nsOp /= float64(e.runs)
			e.bOp /= float64(e.runs)
			e.allocsOp /= float64(e.runs)
		}
	}
	return out, nil
}

func pct(old, new float64) string {
	if old == 0 {
		return "  n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
}

func main() {
	gate := flag.String("gate", "", "regex of benchmarks to gate on ns/op regression")
	maxRegress := flag.Float64("max-regress", 25, "gated ns/op regression threshold, percent")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] OLD.json NEW.json")
		os.Exit(2)
	}
	oldM, err := parseStream(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newM, err := parseStream(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	names := map[string]bool{}
	for n := range oldM {
		names[n] = true
	}
	for n := range newM {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	var gateRe *regexp.Regexp
	if *gate != "" {
		gateRe, err = regexp.Compile(*gate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff: bad -gate:", err)
			os.Exit(2)
		}
	}

	fmt.Printf("%-44s %14s %14s %8s %10s %10s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "B/op", "allocs/op")
	failed := false
	for _, n := range sorted {
		o, hasOld := oldM[n]
		nw, hasNew := newM[n]
		switch {
		case !hasOld:
			fmt.Printf("%-44s %14s %14.0f %8s\n", n, "-", nw.nsOp, "new")
		case !hasNew:
			fmt.Printf("%-44s %14.0f %14s %8s\n", n, o.nsOp, "-", "gone")
		default:
			mem := ""
			if nw.hasMem {
				mem = fmt.Sprintf(" %10s %10s", pct(o.bOp, nw.bOp), pct(o.allocsOp, nw.allocsOp))
			}
			gated := ""
			if gateRe != nil && gateRe.MatchString(n) {
				if o.nsOp > 0 && 100*(nw.nsOp-o.nsOp)/o.nsOp > *maxRegress {
					gated = "  << REGRESSION"
					failed = true
				} else {
					gated = "  (gated)"
				}
			}
			fmt.Printf("%-44s %14.0f %14.0f %8s%s%s\n",
				n, o.nsOp, nw.nsOp, pct(o.nsOp, nw.nsOp), mem, gated)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: gated benchmark regressed more than %.0f%% in ns/op\n", *maxRegress)
		os.Exit(1)
	}
}
