module fleetsim

go 1.22
