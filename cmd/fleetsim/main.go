// Command fleetsim reproduces the paper's tables and figures from the
// command line:
//
//	fleetsim [flags] <experiment> [experiment...]
//	fleetsim all
//
// Experiments: fig2 fig3 fig4 fig5 fig6 fig7 fig11a fig11b fig11c fig12a
// fig12b fig13 fig14 fig15 fig16 tab1 tab2 tab3 sec73 sec74.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fleetsim/fleet"
)

var (
	scale  = flag.Int64("scale", 32, "device scale divisor (1 = full Pixel 3; larger = faster runs)")
	rounds = flag.Int("rounds", 10, "launch rounds per hot-launch experiment (paper: 20)")
	seed   = flag.Uint64("seed", 1, "simulation seed")
	quick  = flag.Bool("quick", false, "reduced rounds for a fast pass")
)

func params() fleet.Params {
	p := fleet.DefaultParams()
	p.Scale = *scale
	p.Rounds = *rounds
	p.Seed = *seed
	if *quick {
		p = p.Quick()
	}
	return p
}

type experiment struct {
	name string
	desc string
	run  func(p fleet.Params)
}

var table = []experiment{
	{"fig2", "hot vs cold launch times", func(p fleet.Params) {
		fmt.Print(fleet.FormatFig2(fleet.Fig2(p)))
	}},
	{"fig3", "tail hot-launch: w/o swap, w/ swap, Marvin", func(p fleet.Params) {
		fmt.Print(fleet.FormatFig3(fleet.Fig3(p)))
	}},
	{"fig4", "object accesses over time (CSV)", func(p fleet.Params) {
		res := fleet.Fig4(p)
		fmt.Printf("# fore->back %.0fs, GC %.0fs, back->fore %.0fs\n", res.ToBackSec, res.GCSec, res.ToFrontSec)
		fmt.Println("time_sec,object_seq,gc")
		for _, pt := range res.Points {
			g := 0
			if pt.GC {
				g = 1
			}
			fmt.Printf("%.2f,%d,%d\n", pt.TimeSec, pt.Seq, g)
		}
	}},
	{"fig5", "FGO/BGO lifetime and footprint", func(p fleet.Params) {
		fmt.Print(fleet.FormatFig5(fleet.Fig5(p)))
	}},
	{"fig6", "NRO/FYO re-access coverage + depth sweep", func(p fleet.Params) {
		fmt.Print(fleet.FormatFig6(fleet.Fig6a(p), fleet.Fig6b(p)))
	}},
	{"fig7", "object size CDFs", func(p fleet.Params) {
		fmt.Print(fleet.FormatFig7(fleet.Fig7(p)))
	}},
	{"fig11a", "caching capacity, 2048B-object apps", func(p fleet.Params) {
		fmt.Print(fleet.FormatFig11("Fig 11a — caching capacity (large objects)", fleet.Fig11a(p)))
	}},
	{"fig11b", "caching capacity, 512B-object apps", func(p fleet.Params) {
		fmt.Print(fleet.FormatFig11("Fig 11b — caching capacity (small objects)", fleet.Fig11b(p)))
	}},
	{"fig11c", "caching capacity, commercial apps", func(p fleet.Params) {
		fmt.Print(fleet.FormatFig11("Fig 11c — caching capacity (commercial apps)", fleet.Fig11c(p)))
	}},
	{"fig12a", "background GC working set", func(p fleet.Params) {
		fmt.Print(fleet.FormatFig12a(fleet.Fig12a(p)))
	}},
	{"fig12b", "Twitch access timeline (CSV)", func(p fleet.Params) {
		res := fleet.Fig12b(p)
		fmt.Println("time_sec,android_gc,fleet_gc,android_mutator")
		n := len(res.Android)
		if len(res.Fleet) < n {
			n = len(res.Fleet)
		}
		for i := 0; i < n; i++ {
			fmt.Printf("%.0f,%d,%d,%d\n", res.Android[i].TimeSec, res.Android[i].GC, res.Fleet[i].GC, res.Android[i].Mutator)
		}
	}},
	{"fig13", "hot-launch study under pressure (+13m,13n)", func(p fleet.Params) {
		fmt.Print(fleet.FormatFig13(fleet.Fig13(p)))
		fmt.Print(fleet.FormatFig13n(fleet.Fig13n(p)))
	}},
	{"fig14", "jank ratio and FPS", func(p fleet.Params) {
		fmt.Print(fleet.FormatFig14(fleet.Fig14(p)))
	}},
	{"fig15", "percentile speedups", func(p fleet.Params) {
		fmt.Print(fleet.FormatFig15(fleet.Fig15(fleet.Fig13(p))))
	}},
	{"fig16", "hot-launch distributions, remaining 6 apps", func(p fleet.Params) {
		fmt.Print(fleet.FormatFig13(fleet.Fig16(p)))
	}},
	{"tab1", "comparison methods", func(fleet.Params) {
		fmt.Print(`Table 1 — comparison methods
  Android: native GC;            page-granularity swap; LRU scheme
  Marvin:  bookmarking GC;       object-granularity swap; object-LRU scheme
  Fleet:   background-object GC; grouped-page swap;       runtime-guided scheme
`)
	}},
	{"tab2", "Fleet default parameters", func(fleet.Params) {
		cfg := fleet.DefaultFleetConfig()
		fmt.Printf(`Table 2 — Fleet defaults
  NRO depth D:          %d
  Background wait Ts:   %v
  Foreground wait Tf:   %v
  CARD_SHIFT:           %d
  Region size:          256 KiB
`, cfg.NRODepth, cfg.BackgroundWait, cfg.ForegroundWait, cfg.CardShift)
	}},
	{"tab3", "commercial app set", func(p fleet.Params) {
		fmt.Println("Table 3 — commercial apps")
		for _, pr := range fleet.CommercialApps(p.Scale) {
			fmt.Printf("  %-12s %-14s java %3.0f%% of footprint\n", pr.Name, pr.Category, 100*pr.JavaHeapFrac)
		}
	}},
	{"sec73", "CPU / memory / power overheads", func(p fleet.Params) {
		fmt.Print(fleet.FormatSec73(fleet.Sec73(p)))
	}},
	{"sec74", "background heap-size sensitivity", func(p fleet.Params) {
		fmt.Print(fleet.FormatSec74(fleet.Sec74(p)))
	}},
	{"extprefetch", "extension: ASAP-style launch prefetch baseline", func(p fleet.Params) {
		fmt.Print(fleet.FormatExt("Extension — prefetch baseline vs Fleet", fleet.ExtPrefetch(p)))
	}},
	{"extzram", "extension: compressed-RAM (zram) swap device", func(p fleet.Params) {
		fmt.Print(fleet.FormatExt("Extension — flash vs zram swap", fleet.ExtZram(p)))
	}},
	{"extdepth", "ablation: NRO depth sweep, end to end", func(p fleet.Params) {
		fmt.Print(fleet.FormatExt("Ablation — NRO depth (end-to-end)", fleet.ExtDepthSweep(p)))
	}},
	{"extadvice", "ablation: madvise halves (COLD/HOT_RUNTIME)", func(p fleet.Params) {
		fmt.Print(fleet.FormatExt("Ablation — runtime-guided swap advice", fleet.ExtAdviceAblation(p)))
	}},
	{"trace", "dump a systrace-style event log of a Fleet scenario (CSV)", func(p fleet.Params) {
		sys := fleet.NewSystem(fleet.DefaultSystemConfig(fleet.PolicyFleet, p.Scale))
		log := sys.EnableTrace(0)
		apps := fleet.CommercialApps(p.Scale)[:6]
		procs := make([]*fleet.Proc, len(apps))
		for i, pr := range apps {
			procs[i] = sys.Launch(pr)
			sys.Use(12 * time.Second)
		}
		for r := 0; r < 2; r++ {
			for i := range procs {
				_, procs[i] = sys.SwitchTo(procs[i])
				sys.Use(12 * time.Second)
			}
		}
		fmt.Print(log.CSV())
		fmt.Fprintf(os.Stderr, "%d events\n", log.Len())
	}},
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fleetsim [flags] <experiment>...\n\nexperiments:\n")
		for _, e := range table {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.name, e.desc)
		}
		fmt.Fprintf(os.Stderr, "  %-8s %s\n\nflags:\n", "all", "run everything except the CSV dumps")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	p := params()
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToLower(a)] = true
	}
	ran := 0
	for _, e := range table {
		if want["all"] && (e.name == "fig4" || e.name == "fig12b" || e.name == "trace") {
			continue // CSV dumps are opt-in
		}
		if !want["all"] && !want[e.name] {
			continue
		}
		start := time.Now()
		e.run(p)
		fmt.Printf("  [%s took %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: no such experiment %v\n", flag.Args())
		os.Exit(2)
	}
}
