// Command fleetsim reproduces the paper's tables and figures from the
// command line:
//
//	fleetsim [flags] <experiment> [experiment...]
//	fleetsim all
//
// Experiments: fig2 fig3 fig4 fig5 fig6 fig7 fig11a fig11b fig11c fig12a
// fig12b fig13 fig14 fig15 fig16 tab1 tab2 tab3 sec73 sec74, plus the
// fault-injection chaos harness (`fleetsim chaos -seeds N`) and the
// device-fleet campaign (`fleetsim population -devices N -tiers ...`).
//
// Experiments run concurrently on a worker pool (-parallel; default
// GOMAXPROCS), and each experiment's internal policy legs fan out on the
// same pool. Output is printed in table order and is bitwise-identical at
// every parallelism level, including -parallel 1 (fully serial).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"fleetsim/fleet"
	"fleetsim/internal/buildinfo"
)

// chaosFailed latches a chaos-harness failure, legFailed a panicked or
// timed-out experiment leg (experiments may run on worker goroutines), so
// main can exit non-zero.
var (
	chaosFailed atomic.Bool
	legFailed   atomic.Bool
)

// interrupted flips on the first SIGINT/SIGTERM; campaigns poll it and
// stop at the next cell boundary, flushing checkpoints on the way out.
var interrupted atomic.Bool

var (
	scale      = flag.Int64("scale", 32, "device scale divisor (1 = full Pixel 3; larger = faster runs)")
	rounds     = flag.Int("rounds", 10, "launch rounds per hot-launch experiment (paper: 20)")
	seed       = flag.Uint64("seed", 1, "simulation seed")
	quick      = flag.Bool("quick", false, "reduced rounds for a fast pass")
	parallel   = flag.Int("parallel", 0, "worker count for experiment legs (0 = GOMAXPROCS, 1 = serial)")
	seeds      = flag.Int("seeds", 3, "seeds per fault profile for the chaos harness")
	timeout    = flag.Duration("timeout", 0, "wall-clock deadline per experiment and per chaos cell (0 = none)")
	retries    = flag.Int("retries", 1, "retry budget for transient chaos-cell failures")
	backend    = flag.String("backend", "", "swap backend for all experiments: flash (default) or zram")
	devices    = flag.Int("devices", 0, "fleet size for the population campaign (0 = campaign default)")
	tiers      = flag.String("tiers", "", "population tier mix as name:weight,... (e.g. low:3,mid:5,high:2; empty = default mix)")
	policies   = flag.String("policies", "", "population policy list, comma-separated (e.g. Android,Fleet; empty = all)")
	ckptDir    = flag.String("checkpoint-dir", "", "directory for campaign checkpoint journals and divergence reports")
	resume     = flag.Bool("resume", false, "resume checkpointed campaigns in -checkpoint-dir instead of starting over")
	traceOut   = flag.String("trace-out", "", "write the trace experiment's event log as Chrome trace-event JSON (Perfetto-loadable) to this file")
	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	version    = flag.Bool("version", false, "print the build stamp and exit")
)

func params() fleet.Params {
	p := fleet.DefaultParams()
	p.Scale = *scale
	p.Rounds = *rounds
	p.Seed = *seed
	p.Devices = *devices
	p.Tiers = *tiers
	p.Policies = *policies
	p.Backend = *backend
	if *quick {
		p = p.Quick()
	}
	return p
}

// experiment runners return their rendered output instead of printing so
// that `all` can execute them concurrently and still emit table order.
// The paper experiments come from the shared registry
// (fleet.Experiments()); only the frontend-specific entries — the chaos
// campaign (flags, checkpoint store) and the systrace dump (stderr) — are
// defined here. optIn entries are excluded from `all`.
type experiment struct {
	name  string
	desc  string
	optIn bool
	run   func(p fleet.Params) string
}

// table is built in main from the registry plus the local entries below.
var table []experiment

var localEntries = []experiment{
	{"chaos", "fault-injection chaos harness (4 profiles + zram/Swam variants x -seeds seeds, determinism + invariants)", true, func(p fleet.Params) string {
		opts := fleet.ChaosOpts{
			Seeds:       *seeds,
			Deadline:    *timeout,
			Retries:     *retries,
			Interrupted: interrupted.Load,
		}
		if *ckptDir != "" {
			st, err := fleet.OpenCheckpoint(filepath.Join(*ckptDir, "chaos.jsonl"), fleet.ChaosCampaignKey(p))
			if err != nil {
				chaosFailed.Store(true)
				return fmt.Sprintf("fleetsim: chaos checkpoint: %v\n", err)
			}
			defer st.Close()
			opts.Store = st
		}
		rep := fleet.ChaosSupervised(p, opts)
		// An interrupted campaign is incomplete, not failed: the partial
		// summary prints, the checkpoint holds the finished cells, and a
		// -resume rerun completes the rest.
		if !rep.Passed() && rep.Skipped == 0 {
			chaosFailed.Store(true)
		}
		writeDivergenceReports(rep)
		return fleet.FormatChaosReport(rep)
	}},
	{"trace", "dump a systrace-style event log of a Fleet scenario (CSV; -trace-out adds Perfetto JSON)", true, func(p fleet.Params) string {
		// The canonical capture shared with fleetd's GET /v1/jobs/{id}/trace:
		// six commercial apps launched, used, and switched through twice.
		log := fleet.CaptureTrace(p, fleet.PolicyFleet)
		fmt.Fprintf(os.Stderr, "%d events\n", log.Len())
		if *traceOut != "" {
			data, err := log.ChromeJSON()
			if err == nil {
				err = os.WriteFile(*traceOut, data, 0o644)
			}
			if err != nil {
				legFailed.Store(true)
				fmt.Fprintf(os.Stderr, "fleetsim: trace-out: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "fleetsim: wrote Chrome trace %s (load in Perfetto or chrome://tracing)\n", *traceOut)
			}
		}
		return log.CSV()
	}},
}

func main() {
	// Registered first so it runs last: by the time the exitCode panic
	// reaches this recover, the deferred checkpoint Closes have flushed.
	defer func() {
		if r := recover(); r != nil {
			code, ok := r.(exitCode)
			if !ok {
				panic(r)
			}
			os.Exit(int(code))
		}
	}()
	// The shared registry provides every paper experiment; chaos and trace
	// are frontend-specific and appended here.
	for _, s := range fleet.Experiments() {
		table = append(table, experiment{name: s.Name, desc: s.Desc, optIn: s.CSV || s.OptIn, run: s.Run})
	}
	table = append(table, localEntries...)

	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fleetsim [flags] <experiment>...\n\nexperiments:\n")
		for _, e := range table {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.name, e.desc)
		}
		fmt.Fprintf(os.Stderr, "  %-8s %s\n\nflags:\n", "all", "run everything except the CSV dumps and the opt-in campaigns (chaos, population)")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Read().String("fleetsim"))
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	fleet.SetParallelism(*parallel)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	// Accept flags after experiment names (`fleetsim chaos -seeds 5
	// -checkpoint-dir ckpt`): the flag package stops at the first non-flag
	// argument, so re-parse the remainder whenever one appears.
	want := map[string]bool{}
	rest := flag.Args()
	for len(rest) > 0 {
		if strings.HasPrefix(rest[0], "-") {
			flag.CommandLine.Parse(rest) // ExitOnError: bad flags abort here
			rest = flag.Args()
			continue
		}
		want[strings.ToLower(rest[0])] = true
		rest = rest[1:]
	}
	if _, ok := fleet.ParseBackend(*backend); !ok {
		fmt.Fprintf(os.Stderr, "fleetsim: unknown swap backend %q\nvalid backends: %s\n",
			*backend, strings.Join(fleet.BackendNames(), " "))
		os.Exit(2)
	}
	p := params()
	fleet.SetParallelism(*parallel) // again: -parallel may have come trailing
	// The population campaign shares the SIGINT latch and per-cell deadline
	// with the chaos harness: interrupt stops it at the next device-range
	// boundary with checkpoints flushed.
	fleet.SetPopulationInterrupt(interrupted.Load)
	fleet.SetPopulationDeadline(*timeout)

	// First SIGINT/SIGTERM: stop campaigns at the next cell boundary,
	// flush checkpoints, print the partial summary, exit 130. Second
	// signal: abort immediately.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		interrupted.Store(true)
		fmt.Fprintln(os.Stderr, "fleetsim: interrupted — finishing in-flight cells and checkpointing (interrupt again to abort)")
		<-sigc
		fmt.Fprintln(os.Stderr, "fleetsim: aborted")
		os.Exit(130)
	}()

	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
			os.Exit(1)
		}
		if !*resume {
			// Fresh campaign: drop stale journals and bisection reports so
			// old cells cannot leak into the new run.
			for _, pat := range []string{"chaos.jsonl", "sweep.jsonl", "divergence-*.txt"} {
				matches, _ := filepath.Glob(filepath.Join(*ckptDir, pat))
				for _, m := range matches {
					os.Remove(m)
				}
			}
		}
		st, err := fleet.OpenCheckpoint(filepath.Join(*ckptDir, "sweep.jsonl"), fleet.SweepCampaignKey(p))
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
			os.Exit(1)
		}
		defer st.Close()
		fleet.SetSweepCheckpointStore(st)
	}
	// Reject unknown names up front, listing the registry instead of a
	// hand-maintained usage string.
	known := map[string]bool{"all": true}
	var names []string
	for _, e := range table {
		known[e.name] = true
		names = append(names, e.name)
	}
	for name := range want {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "fleetsim: no such experiment %q\nvalid experiments: all %s\n",
				name, strings.Join(names, " "))
			os.Exit(2)
		}
	}
	var selected []experiment
	for _, e := range table {
		if want["all"] && e.optIn {
			continue // CSV dumps and the chaos harness are opt-in
		}
		if !want["all"] && !want[e.name] {
			continue
		}
		selected = append(selected, e)
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: no experiment selected %v\n", flag.Args())
		os.Exit(2)
	}

	// Whole experiments are pool tasks too: with the worker pool shared by
	// their internal legs, output stays in table order while the heavy
	// studies overlap. Timing lines report each experiment's own span.
	type outcome struct {
		text string
		took time.Duration
	}
	// Each experiment leg runs supervised: a panic or a -timeout overrun
	// fails that experiment (reported with its stack) without aborting the
	// others.
	run := func(e experiment) outcome {
		start := time.Now()
		texts, errs := fleet.SupervisedMap([]experiment{e}, fleet.SupervisePolicy{Deadline: *timeout},
			func(_ int, e experiment) (string, error) { return e.run(p), nil })
		o := outcome{texts[0], time.Since(start).Round(time.Millisecond)}
		if len(errs) > 0 {
			legFailed.Store(true)
			le := errs[0]
			o.text = fmt.Sprintf("%s FAILED: %v\n", e.name, le.Err)
			if le.Stack != "" {
				for _, line := range strings.Split(strings.TrimRight(le.Stack, "\n"), "\n") {
					o.text += "    " + line + "\n"
				}
			}
		}
		return o
	}
	if fleet.Parallelism() == 1 || len(selected) == 1 {
		for _, e := range selected {
			o := run(e)
			fmt.Print(o.text)
			fmt.Printf("  [%s took %v]\n\n", e.name, o.took)
		}
	} else {
		results := make([]chan outcome, len(selected))
		for i := range results {
			results[i] = make(chan outcome, 1)
		}
		// At most Parallelism() experiments in flight at once; their
		// internal legs fan out on the same process-wide budget, so this
		// only bounds oversubscription, it cannot deadlock.
		sem := make(chan struct{}, fleet.Parallelism())
		for i, e := range selected {
			i, e := i, e
			go func() {
				sem <- struct{}{}
				defer func() { <-sem }()
				results[i] <- run(e)
			}()
		}
		for i, e := range selected {
			o := <-results[i]
			fmt.Print(o.text)
			fmt.Printf("  [%s took %v]\n\n", e.name, o.took)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
			os.Exit(1)
		}
	}
	if interrupted.Load() {
		fleet.SetSweepCheckpointStore(nil) // flushed by the deferred Close
		fmt.Fprintln(os.Stderr, "fleetsim: interrupted; partial results above — rerun with -resume to complete")
		exitAfterDefers(130)
	}
	if chaosFailed.Load() {
		fmt.Fprintln(os.Stderr, "fleetsim: chaos harness detected invariant violations, nondeterminism or failed cells")
		os.Exit(1)
	}
	if legFailed.Load() {
		fmt.Fprintln(os.Stderr, "fleetsim: one or more experiment legs panicked or exceeded -timeout")
		os.Exit(1)
	}
}

// exitAfterDefers exits with the given code via a rethrown panic so main's
// deferred checkpoint Closes still run (os.Exit would skip them).
func exitAfterDefers(code int) {
	panic(exitCode(code))
}

type exitCode int

// writeDivergenceReports writes each divergent cell's full bisection report
// into -checkpoint-dir as divergence-<profile>-<seed>.txt.
func writeDivergenceReports(rep fleet.ChaosReport) {
	if *ckptDir == "" {
		return
	}
	for _, r := range rep.Rows {
		if r.Divergence == nil || r.Divergence.Report == "" {
			continue
		}
		path := filepath.Join(*ckptDir, fmt.Sprintf("divergence-%s-%d.txt", r.Profile, r.Seed))
		if err := os.WriteFile(path, []byte(r.Divergence.Report), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
			continue
		}
		fmt.Fprintf(os.Stderr, "fleetsim: wrote divergence report %s\n", path)
	}
}
