// Command fleetd serves the simulator as a long-running daemon: clients
// submit campaign jobs (experiment names plus parameter overrides) over
// the versioned /v1 HTTP API, a worker pool runs them under the campaign
// supervisor, results stream back as NDJSON, and every state transition
// is journaled so a restarted daemon resumes incomplete jobs
// bitwise-identically.
//
//	fleetd -addr :8080 -workers 4 -queue 64 -journal ckpt/fleetd.jsonl
//
//	curl -s localhost:8080/v1/healthz
//	id=$(curl -s -X POST localhost:8080/v1/jobs \
//	      -d '{"experiments":["fig2"],"quick":true}' | jq -r .id)
//	curl -s localhost:8080/v1/jobs/$id/stream    # NDJSON progress
//	curl -s localhost:8080/v1/jobs/$id/result    # assembled output
//	curl -s localhost:8080/v1/jobs/$id/trace     # Perfetto-loadable trace
//	curl -s localhost:8080/metrics               # Prometheus exposition
//
// The pre-v1 unversioned paths redirect (301/308) to their /v1
// successors for one release. With -debug-addr a second, private
// listener serves net/http/pprof and a /metrics mirror.
//
// On SIGTERM/SIGINT the daemon drains gracefully: it stops admitting
// (submit → 503), finishes or checkpoints in-flight jobs at the next cell
// boundary, flushes the journal and exits 0. A second signal aborts.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fleetsim/internal/buildinfo"
	"fleetsim/internal/experiments"
	"fleetsim/internal/service"
	"fleetsim/internal/telemetry"
	"fleetsim/internal/telemetry/slogx"
)

var (
	addr          = flag.String("addr", "127.0.0.1:8080", "listen address")
	workers       = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queueCap      = flag.Int("queue", 64, "queued-job admission bound (full queue sheds with 429)")
	journal       = flag.String("journal", "", "checkpoint journal path (empty = no durability)")
	scale         = flag.Int64("scale", 32, "default device scale divisor for jobs that do not override it")
	rounds        = flag.Int("rounds", 10, "default launch rounds")
	seed          = flag.Uint64("seed", 1, "default simulation seed")
	deadline      = flag.Duration("timeout", 0, "wall-clock deadline per job cell (0 = none)")
	retries       = flag.Int("retries", 1, "retry budget per transiently-failed cell")
	tenantWeights = flag.String("tenant-weights", "",
		"per-tenant fair-share weights as name=weight,... (weight 0 refuses the tenant at submit)")
	defaultTenantWeight = flag.Int("default-tenant-weight", 1, "fair-share weight for tenants not named in -tenant-weights")
	codelTarget         = flag.Duration("codel-target", 100*time.Millisecond,
		"queue-delay target of the overload controller; background is shed after delay holds above it for -codel-interval")
	codelInterval = flag.Duration("codel-interval", 0, "how long queue delay must stay above target before shedding (0 = 5x target)")
	pidfile       = flag.String("pidfile", "", "write the daemon pid to this file once listening")
	logLevel      = flag.String("log-level", "info", "minimum log level (debug, info, warn, error)")
	debugAddr     = flag.String("debug-addr", "", "private debug listener serving net/http/pprof and /metrics (empty = off)")
	version       = flag.Bool("version", false, "print the build stamp and exit")
)

func main() {
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Read().String("fleetd"))
		return
	}
	log, err := slogx.Setup(os.Stderr, *logLevel, "fleetd")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetd: %v\n", err)
		os.Exit(2)
	}

	p := experiments.DefaultParams()
	p.Scale = *scale
	p.Rounds = *rounds
	p.Seed = *seed

	weights, err := service.ParseTenantWeights(*tenantWeights)
	if err != nil {
		log.Error("bad -tenant-weights", "err", err)
		os.Exit(2)
	}

	// One process-wide registry: the service publishes its queue/worker/
	// journal instruments into it, and the sim bridge routes per-policy
	// simulation metrics (GC pauses, swap traffic, launches) into the
	// same registry, so one /metrics scrape covers the whole stack.
	reg := telemetry.Default()
	telemetry.SetSimRegistry(reg)

	svc, err := service.New(service.Config{
		Workers:             *workers,
		QueueCap:            *queueCap,
		JournalPath:         *journal,
		Params:              p,
		Deadline:            *deadline,
		Retries:             *retries,
		Telemetry:           reg,
		TenantWeights:       weights,
		DefaultTenantWeight: *defaultTenantWeight,
		CoDelTarget:         *codelTarget,
		CoDelInterval:       *codelInterval,
	})
	if err != nil {
		log.Error("startup failed", "err", err)
		os.Exit(1)
	}
	if st := svc.Stats(); st.ResumedJobs > 0 {
		log.Info("resumed incomplete jobs from journal",
			"jobs", st.ResumedJobs, "cells", st.ResumedCells)
	}
	if st := svc.Stats(); st.Epoch > 0 {
		log.Info("journal lease acquired", "epoch", st.Epoch)
		if st.QuarantinedTail != "" {
			// A torn tail is the normal artifact of a crash mid-append; a
			// corrupt one means bytes inside the journal failed their
			// checksum and the preserved .quarantine file deserves a look.
			log.Warn("journal tail quarantined on replay", "reason", st.QuarantinedTail)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: svc.Handler()}
	log.Info("listening",
		"build", buildinfo.Read().String("fleetd"), "addr", ln.Addr().String(),
		"workers", *workers, "queue", *queueCap, "journal", *journal)
	if *pidfile != "" {
		if err := os.WriteFile(*pidfile, []byte(fmt.Sprintf("%d\n", os.Getpid())), 0o644); err != nil {
			log.Warn("pidfile write failed", "path", *pidfile, "err", err)
		}
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Error("debug listen failed", "addr", *debugAddr, "err", err)
			os.Exit(1)
		}
		debugSrv = &http.Server{Handler: debugMux(reg)}
		go debugSrv.Serve(dln)
		log.Info("debug listener up (pprof + metrics)", "addr", dln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		log.Error("serve failed", "err", err)
		svc.Close()
		os.Exit(1)
	case sig := <-sigc:
		log.Info("draining: finishing or checkpointing in-flight jobs (signal again to abort)",
			"signal", sig.String())
	}
	go func() {
		<-sigc
		log.Warn("aborted")
		os.Exit(130)
	}()

	// Drain: stop admitting, park the workers at the next cell boundary,
	// flush and close the journal, then stop serving.
	if err := svc.Close(); err != nil {
		log.Error("journal close failed", "err", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	if debugSrv != nil {
		debugSrv.Shutdown(ctx)
	}
	st := svc.Stats()
	log.Info("drained, exiting 0",
		"completed", st.Completed, "failed", st.Failed, "cancelled", st.Cancelled,
		"shed", st.Shed, "queued", st.QueueDepth)
}

// debugMux serves the private diagnostics surface: the pprof index and
// profiles plus a /metrics mirror, on a listener that is never exposed
// alongside the public API.
func debugMux(reg *telemetry.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", reg.Handler())
	return mux
}
