// Command fleetd serves the simulator as a long-running daemon: clients
// submit campaign jobs (experiment names plus parameter overrides) over
// HTTP, a worker pool runs them under the campaign supervisor, results
// stream back as NDJSON, and every state transition is journaled so a
// restarted daemon resumes incomplete jobs bitwise-identically.
//
//	fleetd -addr :8080 -workers 4 -queue 64 -journal ckpt/fleetd.jsonl
//
//	curl -s localhost:8080/healthz
//	id=$(curl -s -X POST localhost:8080/jobs \
//	      -d '{"experiments":["fig2"],"quick":true}' | jq -r .id)
//	curl -s localhost:8080/jobs/$id/stream      # NDJSON progress
//	curl -s localhost:8080/jobs/$id/result      # assembled output
//
// On SIGTERM/SIGINT the daemon drains gracefully: it stops admitting
// (submit → 503), finishes or checkpoints in-flight jobs at the next cell
// boundary, flushes the journal and exits 0. A second signal aborts.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fleetsim/internal/buildinfo"
	"fleetsim/internal/experiments"
	"fleetsim/internal/service"
)

var (
	addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
	workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queueCap = flag.Int("queue", 64, "queued-job admission bound (full queue sheds with 429)")
	journal  = flag.String("journal", "", "checkpoint journal path (empty = no durability)")
	scale    = flag.Int64("scale", 32, "default device scale divisor for jobs that do not override it")
	rounds   = flag.Int("rounds", 10, "default launch rounds")
	seed     = flag.Uint64("seed", 1, "default simulation seed")
	deadline = flag.Duration("timeout", 0, "wall-clock deadline per job cell (0 = none)")
	retries  = flag.Int("retries", 1, "retry budget per transiently-failed cell")
	pidfile  = flag.String("pidfile", "", "write the daemon pid to this file once listening")
	version  = flag.Bool("version", false, "print the build stamp and exit")
)

func main() {
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Read().String("fleetd"))
		return
	}

	p := experiments.DefaultParams()
	p.Scale = *scale
	p.Rounds = *rounds
	p.Seed = *seed

	svc, err := service.New(service.Config{
		Workers:     *workers,
		QueueCap:    *queueCap,
		JournalPath: *journal,
		Params:      p,
		Deadline:    *deadline,
		Retries:     *retries,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetd: %v\n", err)
		os.Exit(1)
	}
	if st := svc.Stats(); st.ResumedJobs > 0 {
		fmt.Fprintf(os.Stderr, "fleetd: resumed %d incomplete job(s) (%d cell(s) already journaled)\n",
			st.ResumedJobs, st.ResumedCells)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetd: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: svc.Handler()}
	fmt.Fprintf(os.Stderr, "fleetd: %s listening on http://%s (workers=%d queue=%d journal=%q)\n",
		buildinfo.Read().String("fleetd"), ln.Addr(), *workers, *queueCap, *journal)
	if *pidfile != "" {
		if err := os.WriteFile(*pidfile, []byte(fmt.Sprintf("%d\n", os.Getpid())), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "fleetd: pidfile: %v\n", err)
		}
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "fleetd: %v\n", err)
		svc.Close()
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "fleetd: %v — draining (finishing or checkpointing in-flight jobs; signal again to abort)\n", sig)
	}
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "fleetd: aborted")
		os.Exit(130)
	}()

	// Drain: stop admitting, park the workers at the next cell boundary,
	// flush and close the journal, then stop serving.
	if err := svc.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "fleetd: journal close: %v\n", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	st := svc.Stats()
	fmt.Fprintf(os.Stderr, "fleetd: drained (completed=%d failed=%d cancelled=%d shed=%d queued=%d) — exiting 0\n",
		st.Completed, st.Failed, st.Cancelled, st.Shed, st.QueueDepth)
}
