package main

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"syscall"
	"testing"
	"time"
)

func TestConnBackoffBounds(t *testing.T) {
	for attempt := 0; attempt < 40; attempt++ {
		ideal := connBackoffBase << uint(attempt)
		if attempt >= 20 || ideal > connBackoffCap || ideal <= 0 {
			ideal = connBackoffCap
		}
		for trial := 0; trial < 50; trial++ {
			d := connBackoff(attempt)
			if d < ideal/2 || d > ideal {
				t.Fatalf("connBackoff(%d) = %v, want in [%v, %v]", attempt, d, ideal/2, ideal)
			}
			if d > connBackoffCap {
				t.Fatalf("connBackoff(%d) = %v exceeds cap %v", attempt, d, connBackoffCap)
			}
		}
	}
}

func TestConnBackoffGrowsThenCaps(t *testing.T) {
	// The lower bound of each attempt's jitter window doubles until the
	// cap: attempt 6 (25ms·2⁶ = 1.6s) must always sleep longer than
	// attempt 0 can, and a deep attempt stays at the cap window.
	if min6, max0 := connBackoffBase<<6/2, connBackoffBase; min6 <= max0 {
		t.Fatalf("backoff window does not grow: attempt6 min %v <= attempt0 max %v", min6, max0)
	}
	for trial := 0; trial < 20; trial++ {
		if d := connBackoff(30); d < connBackoffCap/2 {
			t.Fatalf("deep attempt backoff %v fell below capped window floor %v", d, connBackoffCap/2)
		}
	}
}

func TestIsConnErr(t *testing.T) {
	refused := &net.OpError{Op: "dial", Err: os.NewSyscallError("connect", syscall.ECONNREFUSED)}
	reset := &net.OpError{Op: "read", Err: os.NewSyscallError("read", syscall.ECONNRESET)}
	wrapped := fmt.Errorf("Post %q: %w", "http://x/v1/jobs", refused)
	for _, err := range []error{refused, reset, wrapped, io.EOF, io.ErrUnexpectedEOF} {
		if !isConnErr(err) {
			t.Errorf("isConnErr(%v) = false, want true", err)
		}
	}
	for _, err := range []error{nil, errors.New("bad spec"), syscall.ENOSPC, context(t)} {
		if isConnErr(err) {
			t.Errorf("isConnErr(%v) = true, want false", err)
		}
	}
}

// context builds a non-connection timeout error.
func context(t *testing.T) error {
	t.Helper()
	return fmt.Errorf("deadline exceeded after %v", time.Second)
}
