package main

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"syscall"
	"testing"
	"time"
)

func TestConnBackoffBounds(t *testing.T) {
	for attempt := 0; attempt < 40; attempt++ {
		ideal := connBackoffBase << uint(attempt)
		if attempt >= 20 || ideal > connBackoffCap || ideal <= 0 {
			ideal = connBackoffCap
		}
		for trial := 0; trial < 50; trial++ {
			d := connBackoff(attempt)
			if d < ideal/2 || d > ideal {
				t.Fatalf("connBackoff(%d) = %v, want in [%v, %v]", attempt, d, ideal/2, ideal)
			}
			if d > connBackoffCap {
				t.Fatalf("connBackoff(%d) = %v exceeds cap %v", attempt, d, connBackoffCap)
			}
		}
	}
}

func TestConnBackoffGrowsThenCaps(t *testing.T) {
	// The lower bound of each attempt's jitter window doubles until the
	// cap: attempt 6 (25ms·2⁶ = 1.6s) must always sleep longer than
	// attempt 0 can, and a deep attempt stays at the cap window.
	if min6, max0 := connBackoffBase<<6/2, connBackoffBase; min6 <= max0 {
		t.Fatalf("backoff window does not grow: attempt6 min %v <= attempt0 max %v", min6, max0)
	}
	for trial := 0; trial < 20; trial++ {
		if d := connBackoff(30); d < connBackoffCap/2 {
			t.Fatalf("deep attempt backoff %v fell below capped window floor %v", d, connBackoffCap/2)
		}
	}
}

func TestIsConnErr(t *testing.T) {
	refused := &net.OpError{Op: "dial", Err: os.NewSyscallError("connect", syscall.ECONNREFUSED)}
	reset := &net.OpError{Op: "read", Err: os.NewSyscallError("read", syscall.ECONNRESET)}
	wrapped := fmt.Errorf("Post %q: %w", "http://x/v1/jobs", refused)
	for _, err := range []error{refused, reset, wrapped, io.EOF, io.ErrUnexpectedEOF} {
		if !isConnErr(err) {
			t.Errorf("isConnErr(%v) = false, want true", err)
		}
	}
	for _, err := range []error{nil, errors.New("bad spec"), syscall.ENOSPC, context(t)} {
		if isConnErr(err) {
			t.Errorf("isConnErr(%v) = true, want false", err)
		}
	}
}

// context builds a non-connection timeout error.
func context(t *testing.T) error {
	t.Helper()
	return fmt.Errorf("deadline exceeded after %v", time.Second)
}

// TestShedBackoffBounds: the fallback shed backoff must grow, jitter
// within [ceiling/2, ceiling], and never return zero (the hot-loop bug
// this guards against: a 429 with no advertised delay must not be
// retried immediately).
func TestShedBackoffBounds(t *testing.T) {
	for attempt := 0; attempt < 64; attempt++ {
		ceil := shedBackoffBase << uint(attempt)
		if attempt >= 20 || ceil > shedBackoffCap || ceil <= 0 {
			ceil = shedBackoffCap
		}
		for trial := 0; trial < 50; trial++ {
			d := shedBackoff(attempt)
			if d <= 0 {
				t.Fatalf("shedBackoff(%d) = %v, want > 0", attempt, d)
			}
			if d < ceil/2 || d > ceil {
				t.Fatalf("shedBackoff(%d) = %v, want in [%v, %v]", attempt, d, ceil/2, ceil)
			}
		}
	}
}

// TestRetryDelayAdvertised covers the three 429 response shapes: envelope
// field, Retry-After header fallback, and neither — where the caller must
// fall back to its own capped backoff instead of a made-up constant.
func TestRetryDelayAdvertised(t *testing.T) {
	mk := func(body, header string) *http.Response {
		rec := httptest.NewRecorder()
		if header != "" {
			rec.Header().Set("Retry-After", header)
		}
		rec.WriteHeader(http.StatusTooManyRequests)
		rec.Body.WriteString(body)
		return rec.Result()
	}
	if d, ok := retryDelay(mk(`{"error":{"code":"queue_full","retry_after_ms":1500}}`, "9")); !ok || d != 1500*time.Millisecond {
		t.Fatalf("envelope case = %v, %v; want 1.5s advertised", d, ok)
	}
	if d, ok := retryDelay(mk(`{"error":{"code":"queue_full"}}`, "2")); !ok || d != 2*time.Second {
		t.Fatalf("header case = %v, %v; want 2s advertised", d, ok)
	}
	if d, ok := retryDelay(mk(`{"error":{"code":"queue_full"}}`, "")); ok || d != 0 {
		t.Fatalf("bare case = %v, %v; want unadvertised", d, ok)
	}
	if d, ok := retryDelay(mk("not json at all", "")); ok || d != 0 {
		t.Fatalf("garbage case = %v, %v; want unadvertised", d, ok)
	}
}

// TestParseTenants covers the overload harness's -tenants flag.
func TestParseTenants(t *testing.T) {
	names, weights, err := parseTenants("gold=4, bronze=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "gold" || names[1] != "bronze" {
		t.Fatalf("names = %v", names)
	}
	if weights["gold"] != 4 || weights["bronze"] != 1 {
		t.Fatalf("weights = %v", weights)
	}
	for _, bad := range []string{"", "solo=1", "a=4,a=1", "a=0,b=1", "a=x,b=1", "justaname,b=1", "a=-2,b=1"} {
		if _, _, err := parseTenants(bad); err == nil {
			t.Fatalf("parseTenants(%q) accepted", bad)
		}
	}
}
