// The -overload saturation harness: drive fleetd well past capacity and
// assert the admission-control invariants the scheduler promises —
//
//  1. no foreground starvation: every foreground probe completes and its
//     p99 queue wait stays under -fg-p99-max even while background floods;
//  2. weighted fairness: while every tenant is backlogged, background
//     service shares track the configured weights within -share-tolerance;
//  3. exactly-once under retry storms: every idempotency key maps to one
//     job ID (each admission is deliberately resubmitted), and with
//     -inspect-journal no cell was committed twice;
//  4. clean convergence: once the flood stops, the daemon drains to an
//     idle queue.
//
// The run is three phases. FILL interleaves a fixed backlog of background
// jobs across the tenants, so the weighted-share measurement starts from
// symmetric queues. FLOOD holds saturating closed-loop background load
// per tenant (driving the CoDel shedder) while foreground probes measure
// interactive latency. DRAIN stops submitting and waits for /v1/stats to
// report an idle daemon. Shares are computed from the server's own
// startedAt timestamps: the first ~5K/4 background starts (K = fill per
// tenant) are slots served while both tenants provably had backlog.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"fleetsim/internal/metrics"
	"fleetsim/internal/snapshot"
)

// olFillPerTenant is the FILL-phase backlog per tenant (bounded below by
// the daemon's queue capacity at runtime).
const olFillPerTenant = 24

// olStats mirrors the /v1/stats fields the harness reads.
type olStats struct {
	QueueDepth       int  `json:"queueDepth"`
	Running          int  `json:"running"`
	Workers          int  `json:"workers"`
	QueueCap         int  `json:"queueCap"`
	ShedOverload     int  `json:"shedOverload"`
	OverloadShedding bool `json:"overloadShedding"`
	DeadlineExceeded int  `json:"deadlineExceeded"`
	IdemReplays      int  `json:"idemReplays"`
}

func getStats(client *http.Client, base string) (olStats, error) {
	var st olStats
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return st, fmt.Errorf("stats: HTTP %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// parseTenants parses "name=weight,..." preserving order.
func parseTenants(s string) (names []string, weights map[string]int, err error) {
	weights = map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, nil, fmt.Errorf("tenant %q: want name=weight", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w <= 0 {
			return nil, nil, fmt.Errorf("tenant %q: weight must be a positive integer", part)
		}
		name = strings.TrimSpace(name)
		if _, dup := weights[name]; dup {
			return nil, nil, fmt.Errorf("tenant %q listed twice", name)
		}
		names = append(names, name)
		weights[name] = w
	}
	if len(names) < 2 {
		return nil, nil, fmt.Errorf("-tenants needs at least two name=weight pairs, got %q", s)
	}
	return names, weights, nil
}

// olDone is one admitted job followed to its terminal state.
type olDone struct {
	tenant  string
	status  string
	started *time.Time
	waitMS  float64
}

// olState is the harness's shared tally.
type olState struct {
	mu         sync.Mutex
	bg         []olDone       // every admitted background job
	fgWait     metrics.Sample // foreground queue wait, ms
	fgDone     int
	fgFailed   int
	errors     int
	retries429 int
	keyIDs     map[string]string // idempotency key → job ID
	dupKeys    []string          // keys that resolved to more than one ID
}

func (o *olState) fail(format string, a ...any) {
	o.mu.Lock()
	o.errors++
	o.mu.Unlock()
	fmt.Printf("overload: "+format+"\n", a...)
}

// olSubmit posts spec under key until admitted or give-up, honoring the
// server's advertised backoff (falling back to shedBackoff), then
// immediately resubmits the same key and records any ID mismatch — the
// deliberate retry storm behind invariant 3. Returns the admitted view
// and false when submission was abandoned (deadline passed while shed).
func olSubmit(client *http.Client, base string, spec jobSpec, key string, giveUp time.Time, o *olState) (jobView, bool) {
	spec.IdempotencyKey = key
	body, _ := json.Marshal(spec)
	post := func() (*http.Response, error) {
		return client.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	}
	var view jobView
	conns, sheds := 0, 0
	for {
		resp, err := post()
		if err != nil {
			if isConnErr(err) && conns < *connRetries {
				conns++
				time.Sleep(connBackoff(conns - 1))
				continue
			}
			o.fail("submit %s: %v", key, err)
			return view, false
		}
		conns = 0
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			delay, advertised := retryDelay(resp)
			if !advertised || delay > 2*time.Second {
				// The advertised delay scales with standing queue delay;
				// under a deliberate flood that would have us give up on
				// measuring. Cap our politeness at the fallback curve.
				delay = shedBackoff(sheds)
			}
			sheds++
			o.mu.Lock()
			o.retries429++
			o.mu.Unlock()
			if time.Now().After(giveUp) {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				return view, false
			}
			time.Sleep(delay)
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil || (resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK) || view.ID == "" {
			o.fail("submit %s: HTTP %d (%v)", key, resp.StatusCode, err)
			return view, false
		}
		break
	}
	// Record the key→ID binding and storm the daemon with a duplicate.
	o.mu.Lock()
	if prev, ok := o.keyIDs[key]; ok && prev != view.ID {
		o.dupKeys = append(o.dupKeys, key)
	}
	o.keyIDs[key] = view.ID
	o.mu.Unlock()
	if resp2, err := post(); err == nil {
		var dup jobView
		derr := json.NewDecoder(resp2.Body).Decode(&dup)
		code := resp2.StatusCode
		resp2.Body.Close()
		if derr == nil && (code == http.StatusOK || code == http.StatusAccepted) && dup.ID != view.ID {
			o.mu.Lock()
			o.dupKeys = append(o.dupKeys, key)
			o.mu.Unlock()
		}
	}
	return view, true
}

// olFollow waits out one admitted job and folds it into the tally.
func olFollow(client *http.Client, base string, v jobView, tenantName string, fg bool, o *olState) {
	t := &tally{ids: map[string]int{}, digests: map[string]string{}}
	final := follow(client, base, v.ID, t)
	o.mu.Lock()
	defer o.mu.Unlock()
	if fg {
		o.fgWait.Add(final.QueueWaitMS)
		if final.Status == "done" {
			o.fgDone++
		} else {
			o.fgFailed++
		}
		return
	}
	o.bg = append(o.bg, olDone{tenant: tenantName, status: final.Status, started: final.StartedAt, waitMS: final.QueueWaitMS})
}

func runOverload(base string, mix []string) int {
	names, weights, err := parseTenants(*tenantsFlag)
	if err != nil {
		fmt.Printf("overload: %v\n", err)
		return 2
	}
	client := &http.Client{}
	st, err := getStats(client, base)
	if err != nil {
		fmt.Printf("overload: cannot reach %s: %v\n", base, err)
		return 2
	}
	workers := st.Workers
	if workers < 1 {
		workers = 1
	}
	// Uniform 1-cell jobs keep DRR cost identical across tenants, so job
	// counts measure service shares directly. The default experiment is
	// fig7 (a few hundred ms per quick job): heavy enough that a flood
	// builds standing queue delay past any sane CoDel target, light
	// enough that the drain phase converges in seconds. The table
	// experiments finish in ~1ms and cannot saturate a daemon.
	exp := "fig7"
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "experiments" {
			exp = mix[0]
		}
	})
	fill := olFillPerTenant
	if room := (st.QueueCap - workers - 4) / len(names); room > 0 && room < fill {
		fill = room
	}
	if fill < 4 {
		fill = 4
	}
	fgClients := (workers + 1) / 2
	bgClients := int(float64(workers) * *overloadFactor / float64(len(names)))
	if bgClients < 2 {
		bgClients = 2
	}
	fmt.Printf("overload: workers=%d queueCap=%d tenants=%v fill=%d/tenant flood=%d clients/tenant fg=%d probes ramp=%v\n",
		workers, st.QueueCap, names, fill, bgClients, fgClients, *overloadRamp)

	o := &olState{keyIDs: map[string]string{}}
	bgSpec := func(t string) jobSpec {
		return jobSpec{Experiments: []string{exp}, Quick: true, Tenant: t, Class: "background"}
	}
	var wg sync.WaitGroup

	// FILL: build a symmetric backlog across tenants so the share window
	// opens with every tenant provably backlogged. Fills run in parallel
	// with a short give-up — once the shedder engages, further fills are
	// pointless and must not stall the harness — and the share window is
	// later derived from what was actually admitted per tenant.
	admitted := map[string]int{}
	var fillMu sync.Mutex
	fillGiveUp := time.Now().Add(3 * time.Second)
	var fillWG sync.WaitGroup
	for n := 0; n < fill; n++ {
		for _, name := range names {
			fillWG.Add(1)
			go func(name string, n int) {
				defer fillWG.Done()
				cl := &http.Client{}
				v, ok := olSubmit(cl, base, bgSpec(name), fmt.Sprintf("ol-fill-%s-%d", name, n), fillGiveUp, o)
				if !ok {
					return // shed away: the flood phase keeps the backlog topped up
				}
				fillMu.Lock()
				admitted[name]++
				fillMu.Unlock()
				wg.Add(1)
				go func() {
					defer wg.Done()
					olFollow(cl, base, v, name, false, o)
				}()
			}(name, n)
		}
	}
	fillWG.Wait()
	fillDone := time.Now()
	deadline := fillDone.Add(*overloadRamp)

	// FLOOD + PROBES for the ramp duration.
	for _, name := range names {
		for c := 0; c < bgClients; c++ {
			wg.Add(1)
			go func(name string, c int) {
				defer wg.Done()
				cl := &http.Client{}
				for n := 0; time.Now().Before(deadline); n++ {
					v, ok := olSubmit(cl, base, bgSpec(name), fmt.Sprintf("ol-bg-%s-%d-%d", name, c, n), deadline, o)
					if !ok {
						continue // shed past the ramp end: not admitted, not followed
					}
					olFollow(cl, base, v, name, false, o)
				}
			}(name, c)
		}
	}
	for c := 0; c < fgClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := &http.Client{}
			for n := 0; time.Now().Before(deadline); n++ {
				spec := jobSpec{Experiments: []string{exp}, Quick: true, Class: "foreground"}
				v, ok := olSubmit(cl, base, spec, fmt.Sprintf("ol-fg-%d-%d", c, n), deadline, o)
				if !ok {
					// Abandoned at ramp end (hard cap sheds all classes);
					// transport errors were already counted in olSubmit.
					return
				}
				olFollow(cl, base, v, "", true, o)
			}
		}(c)
	}
	wg.Wait()

	// DRAIN: the daemon must converge to idle now that the flood stopped.
	converged := false
	for waited := time.Duration(0); waited < 2*time.Minute; waited += 250 * time.Millisecond {
		st, err = getStats(client, base)
		if err == nil && st.QueueDepth == 0 && st.Running == 0 {
			converged = true
			break
		}
		time.Sleep(250 * time.Millisecond)
	}

	return olReport(o, st, names, weights, admitted, fillDone, converged)
}

// olReport prints the harness report and evaluates the four invariants.
// admitted is the FILL-phase backlog per tenant; the share window opens
// at fillDone (when every tenant's backlog was in place) and spans the
// service slots the heaviest tenant's remaining fills are guaranteed to
// cover.
func olReport(o *olState, st olStats, names []string, weights map[string]int, admitted map[string]int, fillDone time.Time, converged bool) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	ok := true
	fails := func(format string, a ...any) {
		fmt.Printf("FAIL: "+format+"\n", a...)
		ok = false
	}

	// Invariant 1: foreground never starves.
	p99 := o.fgWait.Percentile(99)
	fmt.Printf("  foreground: %d done  %d failed  queue-wait ms p50 %.1f p99 %.1f max %.1f\n",
		o.fgDone, o.fgFailed, o.fgWait.Percentile(50), p99, o.fgWait.Percentile(100))
	if o.fgFailed > 0 || o.fgDone == 0 {
		fails("foreground probes: %d failed, %d done", o.fgFailed, o.fgDone)
	}
	if max := float64(*fgP99Max) / float64(time.Millisecond); p99 > max {
		fails("foreground p99 queue wait %.1fms exceeds %.1fms: background flood starved the interactive class", p99, max)
	}

	// Invariant 2: weighted shares, measured only over service slots where
	// every tenant provably had backlog. The window opens at fillDone —
	// jobs started earlier were served before the queues were symmetric —
	// and each tenant's remaining backlog at that instant is its admitted
	// fills minus the ones the workers already consumed.
	started := make([]olDone, 0, len(o.bg))
	consumedEarly := map[string]int{}
	bgFailed := 0
	for _, d := range o.bg {
		if d.status != "done" {
			bgFailed++
		}
		if d.started == nil {
			continue
		}
		if d.started.Before(fillDone) {
			consumedEarly[d.tenant]++
			continue
		}
		started = append(started, d)
	}
	sort.Slice(started, func(i, j int) bool { return started[i].started.Before(*started[j].started) })
	kEff := 1 << 30
	for _, name := range names {
		if rem := admitted[name] - consumedEarly[name]; rem < kEff {
			kEff = rem
		}
	}
	// The heaviest tenant (share w_max/Σw) exhausts a kEff-deep backlog
	// after kEff·Σw/w_max service slots; until then every tenant still
	// has fills queued, so those slots measure pure DRR shares.
	totalW, maxW := 0, 1
	for _, w := range weights {
		totalW += w
		if w > maxW {
			maxW = w
		}
	}
	window := kEff * totalW / maxW
	if window > len(started) {
		window = len(started)
	}
	if window < 0 {
		window = 0
	}
	counts := map[string]int{}
	for _, d := range started[:window] {
		counts[d.tenant]++
	}
	fmt.Printf("  background: %d admitted  %d failed  %d retries(429)  share window %d starts (backlog depth %d)\n",
		len(o.bg), bgFailed, o.retries429, window, kEff)
	if kEff < 8 {
		fails("only %d backlogged fill jobs per tenant at flood start: too few to judge fairness (raise -queue on fleetd or -codel-interval)", kEff)
	}
	for _, name := range names {
		want := float64(weights[name]) / float64(totalW)
		got := 0.0
		if window > 0 {
			got = float64(counts[name]) / float64(window)
		}
		fmt.Printf("    tenant %-10s weight %d  served %3d  share %.2f (want %.2f ±%.2f)\n",
			name, weights[name], counts[name], got, want, *shareTolerance)
		if diff := got - want; diff > *shareTolerance || diff < -*shareTolerance {
			fails("tenant %s served share %.2f, want %.2f ±%.2f", name, got, want, *shareTolerance)
		}
	}
	if bgFailed > 0 {
		fails("%d background jobs failed", bgFailed)
	}

	// Invariant 3: exactly-once under the deliberate retry storm.
	fmt.Printf("  idempotency: %d keys  %d server replays  %d key(s) with multiple IDs\n",
		len(o.keyIDs), st.IdemReplays, len(o.dupKeys))
	if len(o.dupKeys) > 0 {
		fails("idempotency keys mapped to more than one job ID: %v", o.dupKeys)
	}
	if *inspectJournal != "" {
		res, err := snapshot.Inspect(*inspectJournal)
		if err != nil {
			fails("journal inspect %s: %v", *inspectJournal, err)
		} else {
			dups := res.DuplicateCells()
			fmt.Printf("  journal: %s\n", res.String())
			if len(dups) > 0 {
				fails("journal holds %d duplicate cell commit(s): %v", len(dups), dups)
			}
		}
	}

	// Invariant 4: convergence, and the overload machinery actually fired.
	fmt.Printf("  daemon: shedOverload=%d shedding=%v queueDepth=%d running=%d converged=%v\n",
		st.ShedOverload, st.OverloadShedding, st.QueueDepth, st.Running, converged)
	if !converged {
		fails("daemon did not drain to idle within 2m of the flood ending")
	}
	if st.ShedOverload == 0 {
		fails("the overload shedder never fired: the flood did not saturate the daemon (raise -overload-factor or lower -codel-target)")
	}
	if o.errors > 0 {
		fails("%d harness errors (see lines above)", o.errors)
	}
	if !ok {
		return 1
	}
	fmt.Printf("PASS: foreground served under flood, shares match weights, retries admitted exactly once, daemon converged\n")
	return 0
}
