// Command fleetload is the closed-loop load generator for fleetd: N
// concurrent clients submit a mixed stream of experiment jobs at a target
// rate, follow each job to completion (streaming its NDJSON events or
// polling its status), fetch and cross-check results, and report
// end-to-end latency percentiles, queue-wait time and shed/error counts.
//
//	fleetd -addr :8080 &
//	fleetload -addr 127.0.0.1:8080 -clients 64 -jobs 256 -quick
//
// fleetload speaks the /v1 API and is a well-behaved citizen of its
// backpressure contract: shed (429) and draining (503) responses are
// retried after the server-advertised delay — the retry_after_ms field
// of the error envelope, falling back to the Retry-After header — and
// both retry classes are counted in the final report.
//
// fleetload verifies the service's delivery guarantees as it measures:
// every submitted job must reach a terminal state exactly once (no lost,
// no duplicated IDs), and jobs with identical specs must return identical
// result digests. Any violation makes fleetload exit non-zero, so it
// doubles as the "heavy traffic" acceptance check.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"fleetsim/internal/buildinfo"
	"fleetsim/internal/metrics"
	"fleetsim/internal/telemetry/slogx"
)

var (
	addr        = flag.String("addr", "127.0.0.1:8080", "fleetd address (host:port)")
	clients     = flag.Int("clients", 8, "concurrent client goroutines")
	jobs        = flag.Int("jobs", 0, "total jobs to submit (0 = 4 per client)")
	rate        = flag.Float64("rate", 0, "target aggregate submission rate, jobs/sec (0 = as fast as possible)")
	experiments = flag.String("experiments", "tab1,tab2,tab3,fig2,fig5,fig7", "comma-separated experiment mix, assigned round-robin")
	scale       = flag.Int64("scale", 0, "per-job scale override (0 = daemon default)")
	rounds      = flag.Int("rounds", 0, "per-job rounds override (0 = daemon default)")
	seed        = flag.Uint64("seed", 0, "per-job seed override (0 = daemon default)")
	devices     = flag.Int("devices", 0, "per-job population fleet size (0 = campaign default; only affects the population experiment)")
	tiersFlag   = flag.String("tiers", "", "per-job population tier mix, name:weight,... (population experiment only)")
	policiesF   = flag.String("policies", "", "per-job population policy list, comma-separated (population experiment only)")
	quick       = flag.Bool("quick", false, "submit jobs with the quick (reduced rounds) flag")
	stream      = flag.Bool("stream", true, "follow jobs via the NDJSON stream (false: poll status)")
	pollEvery   = flag.Duration("poll", 50*time.Millisecond, "status poll period when -stream=false")
	connRetries = flag.Int("conn-retries", 8, "max consecutive connection-refused/reset retries per request (exponential backoff with jitter)")
	logLevel    = flag.String("log-level", "warn", "minimum log level (debug, info, warn, error)")
	version     = flag.Bool("version", false, "print the build stamp and exit")

	tenant      = flag.String("tenant", "", "tenant name stamped on every job (empty = daemon default)")
	class       = flag.String("class", "", "job class: foreground or background (empty = foreground)")
	jobDeadline = flag.Duration("job-deadline", 0, "per-job end-to-end deadline sent as deadline_ms (0 = none)")

	overload       = flag.Bool("overload", false, "run the saturation harness instead of the normal closed loop (see overload.go)")
	overloadFactor = flag.Float64("overload-factor", 4, "background flood concurrency as a multiple of the daemon's worker count")
	overloadRamp   = flag.Duration("overload-ramp", 10*time.Second, "how long the overload phase offers saturating load")
	tenantsFlag    = flag.String("tenants", "gold=4,bronze=1", "tenant=weight pairs the overload harness floods (weights must match the daemon's -tenant-weights)")
	fgP99Max       = flag.Duration("fg-p99-max", 5*time.Second, "overload assertion: max allowed foreground p99 queue wait")
	shareTolerance = flag.Float64("share-tolerance", 0.15, "overload assertion: allowed absolute deviation of background completion shares from the weight ratio")
	inspectJournal = flag.String("inspect-journal", "", "after the overload run, audit this fleetd journal for duplicate cell commits")
)

// maxDrainRetries bounds how long a client waits out a draining (503)
// daemon before giving the job up as a transport error: unlike a
// momentarily full queue, a drain usually ends in the daemon exiting.
const maxDrainRetries = 20

// Connection-retry backoff bounds: attempt n sleeps a jittered value in
// [base·2ⁿ/2, base·2ⁿ], capped. The jitter keeps a fleet of clients
// reconnecting to a restarted daemon (the kill-loop harness does this
// every iteration) from stampeding it in lockstep.
const (
	connBackoffBase = 25 * time.Millisecond
	connBackoffCap  = 2 * time.Second
)

// connBackoff returns the sleep before connection retry `attempt`
// (0-based): capped exponential with full-half jitter.
func connBackoff(attempt int) time.Duration {
	d := connBackoffCap
	if attempt < 20 { // beyond 2^20 the shift alone exceeds any sane cap
		d = connBackoffBase << uint(attempt)
		if d > connBackoffCap || d <= 0 {
			d = connBackoffCap
		}
	}
	half := int64(d / 2)
	return time.Duration(half + rand.Int63n(half+1))
}

// isConnErr reports whether err is a connection-level failure worth
// retrying: the daemon is down or mid-restart (refused), or was killed
// with the connection open (reset / abrupt EOF).
func isConnErr(err error) bool {
	return err != nil && (errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF))
}

// jobSpec mirrors service.JobSpec on the wire.
type jobSpec struct {
	Experiments    []string `json:"experiments"`
	Scale          int64    `json:"scale,omitempty"`
	Rounds         int      `json:"rounds,omitempty"`
	Seed           uint64   `json:"seed,omitempty"`
	Quick          bool     `json:"quick,omitempty"`
	Tenant         string   `json:"tenant,omitempty"`
	Class          string   `json:"class,omitempty"`
	DeadlineMS     int64    `json:"deadline_ms,omitempty"`
	IdempotencyKey string   `json:"idempotency_key,omitempty"`
	Devices        int      `json:"devices,omitempty"`
	Tiers          string   `json:"tiers,omitempty"`
	Policies       string   `json:"policies,omitempty"`
}

// jobView mirrors the fields of service.JobView fleetload reads.
type jobView struct {
	ID          string     `json:"id"`
	Status      string     `json:"status"`
	QueueWaitMS float64    `json:"queueWaitMs"`
	Digest      string     `json:"digest"`
	Err         string     `json:"err"`
	ErrCode     string     `json:"errCode"`
	Tenant      string     `json:"tenant"`
	StartedAt   *time.Time `json:"startedAt"`
}

// event mirrors the fields of service.Event fleetload reads.
type event struct {
	Phase  string `json:"phase"`
	Digest string `json:"digest"`
	Err    string `json:"err"`
}

// apiError mirrors the v1 error envelope fleetload reads.
type apiError struct {
	Error struct {
		Code         string  `json:"code"`
		Message      string  `json:"message"`
		RetryAfterMS float64 `json:"retry_after_ms"`
	} `json:"error"`
}

// tally aggregates what the fleet of clients observed.
type tally struct {
	mu         sync.Mutex
	latency    metrics.Sample // submit → terminal, ms
	queueWait  metrics.Sample // server-reported queue wait, ms
	retries429 int            // shed responses (retried per server backoff, not lost)
	retries503 int            // draining responses (retried, bounded)
	retryConn  int            // connection refused/reset (retried with capped backoff)
	errors     int
	done       int
	failed     int
	ids        map[string]int    // job id → occurrences (duplicates = bug)
	digests    map[string]string // spec key → result digest (mismatch = bug)
	mismatch   []string
}

func (t *tally) record(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ids[id]++
	return t.ids[id] == 1
}

func (t *tally) checkDigest(specKey, digest string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if prev, ok := t.digests[specKey]; ok {
		if prev != digest {
			t.mismatch = append(t.mismatch, fmt.Sprintf("%s: %s != %s", specKey, digest, prev))
		}
		return
	}
	t.digests[specKey] = digest
}

func main() {
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Read().String("fleetload"))
		return
	}
	if _, err := slogx.Setup(os.Stderr, *logLevel, "fleetload"); err != nil {
		fmt.Fprintf(os.Stderr, "fleetload: %v\n", err)
		os.Exit(2)
	}
	mix := strings.Split(*experiments, ",")
	for i := range mix {
		mix[i] = strings.TrimSpace(mix[i])
	}
	total := *jobs
	if total <= 0 {
		total = 4 * *clients
	}
	base := "http://" + *addr + "/v1"
	if *overload {
		os.Exit(runOverload(base, mix))
	}

	t := &tally{ids: map[string]int{}, digests: map[string]string{}}
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			for {
				idx := int(next.Add(1)) - 1
				if idx >= total {
					return
				}
				if *rate > 0 {
					due := start.Add(time.Duration(float64(idx) / *rate * float64(time.Second)))
					if d := time.Until(due); d > 0 {
						time.Sleep(d)
					}
				}
				runOne(client, base, mix[idx%len(mix)], t)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	lost := total - t.done - t.failed
	fmt.Printf("fleetload: %d clients, %d jobs in %v (%.1f jobs/s)\n",
		*clients, total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("  completed %d  failed %d  lost %d  retried(429) %d  retried(503) %d  retried(conn) %d  errors %d\n",
		t.done, t.failed, lost, t.retries429, t.retries503, t.retryConn, t.errors)
	fmt.Printf("  end-to-end ms   p50 %.1f  p95 %.1f  p99 %.1f  max %.1f\n",
		t.latency.Percentile(50), t.latency.Percentile(95), t.latency.Percentile(99), t.latency.Percentile(100))
	fmt.Printf("  queue-wait ms   p50 %.1f  p95 %.1f  p99 %.1f  max %.1f\n",
		t.queueWait.Percentile(50), t.queueWait.Percentile(95), t.queueWait.Percentile(99), t.queueWait.Percentile(100))

	dups := 0
	for _, n := range t.ids {
		if n > 1 {
			dups++
		}
	}
	ok := true
	if lost != 0 || t.failed != 0 || t.errors != 0 {
		fmt.Printf("FAIL: %d lost, %d failed, %d transport errors\n", lost, t.failed, t.errors)
		ok = false
	}
	if dups != 0 {
		fmt.Printf("FAIL: %d duplicated job id(s)\n", dups)
		ok = false
	}
	if len(t.mismatch) != 0 {
		fmt.Printf("FAIL: %d same-spec digest mismatch(es):\n", len(t.mismatch))
		for _, m := range t.mismatch {
			fmt.Printf("  %s\n", m)
		}
		ok = false
	}
	if !ok {
		os.Exit(1)
	}
	fmt.Printf("PASS: all %d jobs completed exactly once, digests consistent across identical specs\n", t.done)
}

// Shed-retry fallback bounds: when a 429/503 arrives with no advertised
// backoff at all, retry `attempt` (0-based) sleeps a jittered value in
// [base·2ⁿ/2, base·2ⁿ], capped — a client must never hot-loop on a
// server that forgot to say when to come back.
const (
	shedBackoffBase = 100 * time.Millisecond
	shedBackoffCap  = 5 * time.Second
)

// shedBackoff is the capped exponential fallback for unadvertised shed
// retries, with full-half jitter so a fleet of clients desynchronizes.
func shedBackoff(attempt int) time.Duration {
	d := shedBackoffCap
	if attempt < 20 {
		d = shedBackoffBase << uint(attempt)
		if d > shedBackoffCap || d <= 0 {
			d = shedBackoffCap
		}
	}
	half := int64(d / 2)
	return time.Duration(half + rand.Int63n(half+1))
}

// retryDelay extracts the server-advertised backoff from a 429/503
// response: the error envelope's retry_after_ms when present, else the
// Retry-After header (whole seconds). advertised is false when the
// response carried neither — the caller must fall back to its own
// capped, jittered backoff (shedBackoff) instead of assuming a delay.
// It consumes and closes the body.
func retryDelay(resp *http.Response) (delay time.Duration, advertised bool) {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
	var env apiError
	if json.Unmarshal(body, &env) == nil && env.Error.RetryAfterMS > 0 {
		return time.Duration(env.Error.RetryAfterMS * float64(time.Millisecond)), true
	}
	if after, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && after > 0 {
		return time.Duration(after) * time.Second, true
	}
	return 0, false
}

// runOne submits one job (retrying shed and draining submissions per the
// server's advertised backoff), follows it to a terminal state, fetches
// the result and folds the measurements into the tally.
func runOne(client *http.Client, base, exp string, t *tally) {
	spec := jobSpec{
		Experiments: []string{exp}, Scale: *scale, Rounds: *rounds, Seed: *seed, Quick: *quick,
		Tenant: *tenant, Class: *class, DeadlineMS: int64(*jobDeadline / time.Millisecond),
		Devices: *devices, Tiers: *tiersFlag, Policies: *policiesF,
	}
	specKey := fmt.Sprintf("%s/s%d/r%d/seed%d/q%v/d%d/%s/%s", exp, *scale, *rounds, *seed, *quick,
		*devices, *tiersFlag, *policiesF)
	body, _ := json.Marshal(spec)

	submitted := time.Now()
	var view jobView
	drains, conns, sheds := 0, 0, 0
	for {
		resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			// A refused or reset connection usually means the daemon is
			// restarting (the kill-loop harness does this on purpose):
			// back off and retry instead of writing the job off.
			if isConnErr(err) && conns < *connRetries {
				t.mu.Lock()
				t.retryConn++
				t.mu.Unlock()
				time.Sleep(connBackoff(conns))
				conns++
				continue
			}
			t.mu.Lock()
			t.errors++
			t.mu.Unlock()
			return
		}
		conns = 0
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			code := resp.StatusCode
			delay, advertised := retryDelay(resp)
			if !advertised {
				delay = shedBackoff(sheds)
			}
			sheds++
			t.mu.Lock()
			if code == http.StatusTooManyRequests {
				t.retries429++
			} else {
				t.retries503++
			}
			t.mu.Unlock()
			if code == http.StatusServiceUnavailable {
				if drains++; drains > maxDrainRetries {
					t.mu.Lock()
					t.errors++
					t.mu.Unlock()
					return
				}
			}
			time.Sleep(delay)
			continue
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted || err != nil || view.ID == "" {
			t.mu.Lock()
			t.errors++
			t.mu.Unlock()
			return
		}
		break
	}
	if !t.record(view.ID) {
		return // duplicate ID: counted as a failure at report time
	}

	terminal := follow(client, base, view.ID, t)
	latencyMS := float64(time.Since(submitted)) / float64(time.Millisecond)

	t.mu.Lock()
	t.latency.Add(latencyMS)
	t.queueWait.Add(terminal.QueueWaitMS)
	if terminal.Status == "done" {
		t.done++
	} else {
		t.failed++
	}
	t.mu.Unlock()
	if terminal.Status == "done" {
		verifyResult(client, base, terminal, specKey, t)
	}
}

// follow waits for the job to reach a terminal state, via the NDJSON
// stream or by polling, and returns the final status view. Connection
// failures while polling back off exponentially (the daemon may be
// mid-restart) but never give the job up: the journal guarantees its
// state survives, so the authoritative answer is worth waiting for.
func follow(client *http.Client, base, id string, t *tally) jobView {
	if *stream {
		resp, err := client.Get(base + "/jobs/" + id + "/stream")
		if err == nil {
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
			for sc.Scan() {
				var ev event
				if json.Unmarshal(sc.Bytes(), &ev) != nil {
					continue
				}
				if ev.Phase == "done" || ev.Phase == "failed" || ev.Phase == "cancelled" {
					break
				}
			}
			resp.Body.Close()
		}
		// The stream ended (terminal event, drain, or disconnect): the
		// status endpoint has the authoritative final view.
	}
	conns := 0
	for {
		resp, err := client.Get(base + "/jobs/" + id)
		if err == nil && resp.StatusCode == http.StatusOK {
			var v jobView
			err = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err == nil && (v.Status == "done" || v.Status == "failed" || v.Status == "cancelled") {
				return v
			}
			conns = 0
		} else if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			conns = 0
		} else if isConnErr(err) {
			t.mu.Lock()
			t.retryConn++
			t.mu.Unlock()
			time.Sleep(connBackoff(conns))
			conns++
			continue
		}
		time.Sleep(*pollEvery)
	}
}

// verifyResult fetches the assembled result and checks it against the
// advertised digest and against other jobs with the same spec.
func verifyResult(client *http.Client, base string, v jobView, specKey string, t *tally) {
	var resp *http.Response
	var err error
	for conns := 0; ; conns++ {
		resp, err = client.Get(base + "/jobs/" + v.ID + "/result")
		if isConnErr(err) && conns < *connRetries {
			t.mu.Lock()
			t.retryConn++
			t.mu.Unlock()
			time.Sleep(connBackoff(conns))
			continue
		}
		break
	}
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		t.mu.Lock()
		t.errors++
		t.mu.Unlock()
		return
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if n == 0 || resp.Header.Get("X-Fleetd-Digest") != v.Digest {
		t.mu.Lock()
		t.errors++
		t.mu.Unlock()
		return
	}
	t.checkDigest(specKey, v.Digest)
}
