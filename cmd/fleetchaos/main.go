// Command fleetchaos is the kill-loop chaos harness: the executable
// proof of fleetd's crash-only durability contract. It spawns a real
// fleetd process, drives submission load at it, SIGKILLs the daemon
// mid-write N times, audits the raw journal between every kill and
// restart, and finally verifies that every job completed exactly once
// with results bitwise-identical to an uninterrupted baseline run.
//
//	go build -o /tmp/fleetd ./cmd/fleetd
//	go run ./cmd/fleetchaos -fleetd /tmp/fleetd -iterations 25
//
// What it checks, per iteration and at the end:
//
//   - exactly-once cells: snapshot.Inspect reads the journal's raw
//     append history (duplicates preserved); a cell key appearing twice
//     means a daemon re-executed work the journal already held — FAIL.
//   - no corruption: a torn trailing record is the expected artifact of
//     SIGKILL mid-append and is counted, but a mid-file checksum failure
//     (TailCorrupt) means the recovery path destroyed bytes — FAIL.
//   - bitwise-identical results: every chaos job's result bytes and
//     digest must equal the baseline job with the same spec — FAIL on
//     any divergence.
//   - nothing lost: every submitted job reaches a terminal "done" state
//     across restarts — FAIL on failed/lost jobs.
//
// Exit status: 0 all checks passed, 1 a durability check failed,
// 2 usage or environment error.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"fleetsim/internal/buildinfo"
	"fleetsim/internal/snapshot"
)

var (
	fleetdBin   = flag.String("fleetd", "", "path to the fleetd binary (empty = `go build ./cmd/fleetd` into the work dir; requires running from the repo)")
	addr        = flag.String("addr", "127.0.0.1:8097", "address the spawned daemons listen on")
	iterations  = flag.Int("iterations", 25, "number of mid-write SIGKILLs")
	jobs        = flag.Int("jobs", 48, "jobs in the workload (same list for baseline and chaos runs)")
	cells       = flag.Int("cells", 3, "cells (experiments) per job — more cells = more checkpoint boundaries per job")
	clients     = flag.Int("clients", 6, "concurrent submitter goroutines")
	experiments = flag.String("experiments", "fig7", "comma-separated experiment mix, cycled across cells; fig7 quick at scale 16 runs ~160ms/cell, slow enough that the workload outlasts the kill loop and fast enough that cells complete inside kill windows")
	killMin     = flag.Duration("kill-min", 150*time.Millisecond, "minimum uptime before a SIGKILL (long enough for cells to complete and append mid-window)")
	killMax     = flag.Duration("kill-max", 700*time.Millisecond, "maximum uptime before a SIGKILL (short enough that the workload outlasts the loop)")
	seed        = flag.Int64("seed", 1, "kill-timing RNG seed")
	dir         = flag.String("dir", "", "work directory (empty = temp dir, removed on success)")
	version     = flag.Bool("version", false, "print the build stamp and exit")
)

// spec is the wire JobSpec. Seed varies across the list so the digest
// cross-check covers more than one parameterization, and repeats so
// identical specs exist to compare.
type spec struct {
	Experiments []string `json:"experiments"`
	Scale       int64    `json:"scale,omitempty"`
	Seed        uint64   `json:"seed,omitempty"`
	Quick       bool     `json:"quick,omitempty"`
}

func (s spec) key() string {
	return fmt.Sprintf("%s/s%d/seed%d/q%v", strings.Join(s.Experiments, "+"), s.Scale, s.Seed, s.Quick)
}

type jobView struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Digest string `json:"digest"`
	Err    string `json:"err"`
}

type statsView struct {
	Stats struct {
		QuarantinedTail string `json:"quarantinedTail"`
		Degraded        bool   `json:"degraded"`
	} `json:"stats"`
}

// daemon is one spawned fleetd process.
type daemon struct {
	cmd *exec.Cmd
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fleetchaos: "+format+"\n", args...)
	os.Exit(2)
}

var failures int

func failf(format string, args ...any) {
	failures++
	fmt.Printf("FAIL: "+format+"\n", args...)
}

func main() {
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Read().String("fleetchaos"))
		return
	}
	if *killMax < *killMin {
		fatalf("-kill-max %v < -kill-min %v", *killMax, *killMin)
	}
	work := *dir
	keep := work != ""
	if work == "" {
		var err error
		work, err = os.MkdirTemp("", "fleetchaos-*")
		if err != nil {
			fatalf("work dir: %v", err)
		}
	} else if err := os.MkdirAll(work, 0o755); err != nil {
		fatalf("work dir: %v", err)
	}

	bin := *fleetdBin
	if bin == "" {
		bin = filepath.Join(work, "fleetd")
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/fleetd").CombinedOutput()
		if err != nil {
			fatalf("building fleetd (pass -fleetd or run from the repo root): %v\n%s", err, out)
		}
	}

	mix := strings.Split(*experiments, ",")
	for i := range mix {
		mix[i] = strings.TrimSpace(mix[i])
	}
	specs := make([]spec, *jobs)
	for i := range specs {
		exps := make([]string, *cells)
		for c := range exps {
			exps[c] = mix[(i+c)%len(mix)]
		}
		specs[i] = spec{
			Experiments: exps,
			Scale:       16,
			Seed:        uint64(1 + i%4),
			Quick:       true,
		}
	}
	client := &http.Client{Timeout: 5 * time.Second}
	rng := rand.New(rand.NewSource(*seed))

	// Phase 1 — baseline: one uninterrupted daemon runs the whole
	// workload; its per-spec digests and result bytes are the truth the
	// chaos run must reproduce bitwise.
	fmt.Printf("fleetchaos: baseline run (%d jobs, %d clients)\n", len(specs), *clients)
	basePath := filepath.Join(work, "baseline.jsonl")
	d := startDaemon(bin, basePath, filepath.Join(work, "fleetd-baseline.log"))
	waitHealthy(client, 10*time.Second)
	baseIDs := submitAll(client, specs)
	baseline := awaitAll(client, baseIDs, 120*time.Second)
	d.terminate()
	wantDigest := make(map[string]string, len(specs))
	wantResult := make(map[string]string, len(specs))
	for i, r := range baseline {
		if r.Status != "done" {
			fatalf("baseline job %s (%s): status %s (%s)", r.ID, specs[i].key(), r.Status, r.Err)
		}
		k := specs[i].key()
		if prev, ok := wantDigest[k]; ok && prev != r.Digest {
			fatalf("baseline is not deterministic: spec %s digests %s and %s", k, prev, r.Digest)
		}
		wantDigest[k] = r.Digest
		wantResult[k] = r.result
	}

	// Phase 2 — kill loop: one journal across every incarnation; load
	// flows continuously while the daemon is repeatedly SIGKILLed
	// mid-write. Between each kill and restart the dead daemon's journal
	// is audited raw.
	fmt.Printf("fleetchaos: kill loop (%d SIGKILLs, uptime %v..%v)\n", *iterations, *killMin, *killMax)
	chaosPath := filepath.Join(work, "chaos.jsonl")
	logPath := filepath.Join(work, "fleetd-chaos.log")
	ids := make([]atomic.Value, len(specs)) // spec index → accepted job ID
	var stop atomic.Bool
	var wg sync.WaitGroup
	pending := make(chan int, len(specs)*8)
	for i := range specs {
		pending <- i
	}
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			submitLoop(client, specs, ids, pending, &stop)
		}()
	}

	tornTails, records, drainedAt := 0, 0, 0
	for it := 1; it <= *iterations; it++ {
		d = startDaemon(bin, chaosPath, logPath)
		waitHealthy(client, 10*time.Second)
		checkStartupStats(client)
		time.Sleep(*killMin + time.Duration(rng.Int63n(int64(*killMax-*killMin)+1)))
		d.kill()

		ins, err := snapshot.Inspect(chaosPath)
		if err != nil {
			failf("iteration %d: journal unreadable after SIGKILL: %v", it, err)
			continue
		}
		records = len(ins.Keys)
		if dups := ins.Duplicates(); len(dups) > 0 {
			failf("iteration %d: %d duplicate journal key(s) — cells executed twice: %v", it, len(dups), dups)
		}
		if ins.TailReason == snapshot.TailCorrupt {
			failf("iteration %d: corrupt (not torn) journal tail at offset %d", it, ins.TailOffset)
		}
		if ins.TailReason == snapshot.TailTorn {
			tornTails++
		}
		if drainedAt == 0 && doneCount(ins.Keys) >= len(specs) {
			drainedAt = it
		}
		fmt.Printf("  kill %2d/%d: %s\n", it, *iterations, ins.String())
	}
	if drainedAt > 0 {
		// Not a durability failure, but kills past this point hit an idle
		// daemon and prove nothing — the workload should be sized up.
		fmt.Printf("WARN: workload drained by kill %d/%d; raise -jobs/-cells or use heavier -experiments so kills land mid-work\n",
			drainedAt, *iterations)
	}

	// Phase 3 — recovery: a final daemon finishes everything; every job
	// must come back done with baseline-identical bytes.
	fmt.Printf("fleetchaos: recovery run (%d records journaled, %d torn tails seen)\n", records, tornTails)
	d = startDaemon(bin, chaosPath, logPath)
	waitHealthy(client, 10*time.Second)
	checkStartupStats(client)
	deadline := time.Now().Add(120 * time.Second)
	for !allSubmitted(ids) {
		if time.Now().After(deadline) {
			fatalf("submissions did not finish within 120s")
		}
		time.Sleep(20 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	chaosIDs := make([]string, len(specs))
	for i := range ids {
		chaosIDs[i] = ids[i].Load().(string)
	}
	results := awaitAll(client, chaosIDs, 120*time.Second)

	for i, r := range results {
		k := specs[i].key()
		if r.Status != "done" {
			failf("job %s (%s) ended %s: %s", r.ID, k, r.Status, r.Err)
			continue
		}
		if r.Digest != wantDigest[k] {
			failf("job %s (%s) digest %s != baseline %s", r.ID, k, r.Digest, wantDigest[k])
		}
		if r.result != wantResult[k] {
			failf("job %s (%s) result bytes differ from baseline", r.ID, k)
		}
	}
	d.terminate()

	// Final raw audit of the settled journal.
	ins, err := snapshot.Inspect(chaosPath)
	if err != nil {
		failf("final journal audit: %v", err)
	} else {
		if dups := ins.Duplicates(); len(dups) > 0 {
			failf("final journal holds %d duplicate key(s): %v", len(dups), dups)
		}
		fmt.Printf("  final audit: %s\n", ins.String())
	}

	if failures > 0 {
		fmt.Printf("FAIL: %d durability violation(s) across %d SIGKILLs (work dir kept: %s)\n", failures, *iterations, work)
		os.Exit(1)
	}
	fmt.Printf("PASS: %d jobs exactly-once and bitwise-identical to baseline across %d mid-write SIGKILLs (%d torn tails recovered)\n",
		len(specs), *iterations, tornTails)
	if !keep {
		os.RemoveAll(work)
	}
}

// startDaemon spawns fleetd on *addr with the given journal, appending
// its stderr to logPath.
func startDaemon(bin, journal, logPath string) *daemon {
	logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fatalf("daemon log: %v", err)
	}
	cmd := exec.Command(bin,
		"-addr", *addr, "-journal", journal,
		"-workers", "2", "-queue", "256", "-log-level", "warn")
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		fatalf("spawn fleetd: %v", err)
	}
	logf.Close() // the child holds its own descriptor
	return &daemon{cmd: cmd}
}

// kill SIGKILLs the daemon — no drain, no flush, the crash the journal
// is built for — and reaps it.
func (d *daemon) kill() {
	d.cmd.Process.Kill()
	d.cmd.Wait()
}

// terminate asks for a graceful drain and falls back to SIGKILL.
func (d *daemon) terminate() {
	d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { d.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		d.cmd.Process.Kill()
		<-done
	}
}

// waitHealthy polls /v1/healthz until the daemon answers 200.
func waitHealthy(client *http.Client, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get("http://" + *addr + "/v1/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			fatalf("daemon did not become healthy within %v", timeout)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// checkStartupStats fails the run if a restarted daemon reports a
// corrupt quarantined tail (torn is expected) or comes up degraded.
func checkStartupStats(client *http.Client) {
	resp, err := client.Get("http://" + *addr + "/v1/healthz")
	if err != nil {
		return // transient; waitHealthy already vouched once
	}
	defer resp.Body.Close()
	var h statsView
	if json.NewDecoder(resp.Body).Decode(&h) != nil {
		return
	}
	if h.Stats.QuarantinedTail == snapshot.TailCorrupt {
		failf("restarted daemon quarantined a corrupt (not torn) tail")
	}
	if h.Stats.Degraded {
		failf("restarted daemon came up degraded on a healthy filesystem")
	}
}

// submitAll submits every spec sequentially (baseline path, daemon never
// dies) and returns the accepted job IDs.
func submitAll(client *http.Client, specs []spec) []string {
	out := make([]string, len(specs))
	for i, sp := range specs {
		id, ok := trySubmit(client, sp)
		if !ok {
			fatalf("baseline submit %s failed", sp.key())
		}
		out[i] = id
	}
	return out
}

// submitLoop pulls spec indices and submits them against a daemon that
// keeps dying. A refused connection or daemon-side 5xx just requeues the
// index — the next incarnation will take it.
func submitLoop(client *http.Client, specs []spec, ids []atomic.Value, pending chan int, stop *atomic.Bool) {
	for !stop.Load() {
		var i int
		select {
		case i = <-pending:
		case <-time.After(50 * time.Millisecond):
			continue
		}
		if id, ok := trySubmit(client, specs[i]); ok {
			ids[i].Store(id)
			continue
		}
		pending <- i
		time.Sleep(time.Duration(20+rand.Intn(60)) * time.Millisecond)
	}
}

// trySubmit POSTs one job; ok is false on any transport error or
// non-202 (the caller retries against the next daemon incarnation).
func trySubmit(client *http.Client, sp spec) (string, bool) {
	body, _ := json.Marshal(sp)
	resp, err := client.Post("http://"+*addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		io.Copy(io.Discard, resp.Body)
		return "", false
	}
	var v jobView
	if json.NewDecoder(resp.Body).Decode(&v) != nil || v.ID == "" {
		return "", false
	}
	return v.ID, true
}

// doneCount counts terminal-record keys ("job/NNNNNN/done") in a raw
// key list.
func doneCount(keys []string) int {
	n := 0
	for _, k := range keys {
		if strings.HasSuffix(k, "/done") {
			n++
		}
	}
	return n
}

func allSubmitted(ids []atomic.Value) bool {
	for i := range ids {
		if ids[i].Load() == nil {
			return false
		}
	}
	return true
}

// finalJob is a terminal job view plus its fetched result bytes.
type finalJob struct {
	jobView
	result string
}

// awaitAll polls every job to a terminal state and fetches its result.
func awaitAll(client *http.Client, ids []string, timeout time.Duration) []finalJob {
	deadline := time.Now().Add(timeout)
	out := make([]finalJob, len(ids))
	for i, id := range ids {
		out[i] = await(client, id, deadline)
		if out[i].Status == "done" {
			out[i].result = fetchResult(client, id)
		}
	}
	return out
}

func await(client *http.Client, id string, deadline time.Time) finalJob {
	for {
		resp, err := client.Get("http://" + *addr + "/v1/jobs/" + id)
		if err == nil && resp.StatusCode == http.StatusOK {
			var v jobView
			err = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err == nil && (v.Status == "done" || v.Status == "failed" || v.Status == "cancelled") {
				return finalJob{jobView: v}
			}
		} else if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if time.Now().After(deadline) {
			fatalf("job %s did not reach a terminal state in time", id)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func fetchResult(client *http.Client, id string) string {
	for attempt := 0; attempt < 5; attempt++ {
		resp, err := client.Get("http://" + *addr + "/v1/jobs/" + id + "/result")
		if err == nil {
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && rerr == nil {
				return string(data)
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	failf("result for %s could not be fetched", id)
	return ""
}
